/**
 * @file
 * Driver/facade tests: pipeline orchestration, option handling, error
 * reporting, the cost model, and the profile-feedback loop.
 */

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "driver/compile_cache.hh"
#include "driver/compiler.hh"
#include "support/fault_injection.hh"
#include "support/job_pool.hh"

namespace dsp
{
namespace
{

TEST(Driver, RejectsMainWithParameters)
{
    EXPECT_THROW(compileSource("void main(int x) { out(x); }"),
                 UserError);
}

TEST(Driver, RejectsProgramsWithoutMain)
{
    EXPECT_THROW(compileSource("void helper() {}"), UserError);
}

TEST(Driver, ReportsSyntaxErrorsWithLocation)
{
    try {
        compileSource("void main() { int x = ; }");
        FAIL() << "expected UserError";
    } catch (const UserError &e) {
        EXPECT_NE(std::string(e.what()).find(":"), std::string::npos);
    }
}

TEST(Driver, CostModelComposition)
{
    const char *src = R"(
        int a[100];
        int b[50];
        void main() {
            for (int i = 0; i < 100; i++) a[i] = i;
            for (int i = 0; i < 50; i++) b[i] = a[i] + a[i + 50];
            out(b[49]);
        }
    )";
    CompileOptions opts;
    opts.mode = AllocMode::CB;
    auto compiled = compileSource(src, opts);
    auto run = runProgram(compiled);
    auto cost = computeCost(compiled, run);

    EXPECT_EQ(cost.dataX + cost.dataY, 150);
    EXPECT_EQ(cost.insts, compiled.program.instructionWords());
    EXPECT_EQ(cost.total(),
              cost.dataX + cost.dataY + 2L * cost.stack + cost.insts);
}

TEST(Driver, DuplicationShowsUpInCost)
{
    const char *src = R"(
        int sig[64];
        int R[8];
        void main() {
            for (int i = 0; i < 64; i++) sig[i] = in();
            for (int m = 0; m < 8; m++) {
                int s = 0;
                for (int n = 0; n < 56; n++)
                    s += sig[n] * sig[n + m];
                R[m] = s;
            }
            for (int m = 0; m < 8; m++) out(R[m]);
        }
    )";
    std::vector<int32_t> input(64, 3);

    CompileOptions cb_opts;
    cb_opts.mode = AllocMode::CB;
    auto cb = compileSource(src, cb_opts);
    auto cb_cost = computeCost(cb, runProgram(cb, packInputInts(input)));

    CompileOptions dup_opts;
    dup_opts.mode = AllocMode::CBDup;
    auto dup = compileSource(src, dup_opts);
    auto dup_cost =
        computeCost(dup, runProgram(dup, packInputInts(input)));

    // The duplicated signal buffer costs exactly its size in extra
    // data words (modulo instruction-count deltas).
    EXPECT_EQ(dup_cost.dataX + dup_cost.dataY,
              cb_cost.dataX + cb_cost.dataY + 64);
}

TEST(Driver, ProfileFeedbackRoundTrip)
{
    const char *src = R"(
        int a[16];
        int b[16];
        void main() {
            for (int i = 0; i < 16; i++) { a[i] = in(); b[i] = in(); }
            int s = 0;
            for (int i = 0; i < 16; i++)
                s += a[i] * b[i];
            out(s);
        }
    )";
    std::vector<int32_t> input;
    for (int i = 0; i < 32; ++i)
        input.push_back(i);

    CompileOptions first;
    first.mode = AllocMode::CB;
    auto compiled = compileSource(src, first);
    auto run = runProgram(compiled, packInputInts(input));
    ASSERT_FALSE(run.profile.empty());

    CompileOptions second;
    second.mode = AllocMode::CB;
    second.weights = WeightPolicy::Profile;
    second.profile = &run.profile;
    auto recompiled = compileSource(src, second);
    auto rerun = runProgram(recompiled, packInputInts(input));
    EXPECT_EQ(run.output, rerun.output);
    // The profiled partition must still split the hot pair.
    DataObject *a = recompiled.module->findGlobal("a");
    DataObject *b = recompiled.module->findGlobal("b");
    EXPECT_NE(a->bank, b->bank);
}

TEST(Driver, MachineConfigIsHonored)
{
    CompileOptions opts;
    opts.machine.bankWords = 1024;
    opts.machine.stackWords = 128;
    auto compiled =
        compileSource("int a[8]; void main() { out(a[0]); }", opts);
    EXPECT_EQ(compiled.program.config.bankWords, 1024);
    Simulator sim(compiled.program, *compiled.module);
    EXPECT_EQ(sim.addrReg(regs::AddrSpX), 1024u);
    EXPECT_EQ(sim.addrReg(regs::AddrSpY), 2048u);
}

TEST(Driver, OptLevelZeroStillCorrect)
{
    const char *src = R"(
        void main() {
            int s = 0;
            for (int i = 1; i <= 10; i++) s += i * i;
            out(s);
        }
    )";
    for (int level : {0, 1}) {
        CompileOptions opts;
        opts.optLevel = level;
        auto r = runProgram(compileSource(src, opts));
        ASSERT_EQ(r.output.size(), 1u);
        EXPECT_EQ(r.output[0].asInt(), 385);
    }
}

TEST(Driver, PackHelpers)
{
    auto ints = packInputInts({-1, 2});
    EXPECT_EQ(ints[0], 0xFFFFFFFFu);
    EXPECT_EQ(ints[1], 2u);
    auto floats = packInputFloats({1.0f});
    EXPECT_EQ(floats[0], 0x3F800000u);
}

TEST(Driver, AllocModeNames)
{
    EXPECT_STREQ(allocModeName(AllocMode::SingleBank), "single-bank");
    EXPECT_STREQ(allocModeName(AllocMode::CB), "CB");
    EXPECT_STREQ(allocModeName(AllocMode::CBDup), "CB+dup");
    EXPECT_STREQ(allocModeName(AllocMode::FullDup), "full-dup");
    EXPECT_STREQ(allocModeName(AllocMode::Ideal), "ideal");
}

TEST(CompileCache, CompilesEachKeyOnce)
{
    const char *src = "void main() { out(41 + 1); }";
    CompileCache cache;
    CompileOptions cb;
    cb.mode = AllocMode::CB;

    auto first = cache.get(src, cb);
    auto again = cache.get(src, cb);
    EXPECT_EQ(first.get(), again.get());
    EXPECT_EQ(cache.compileCount(), 1);

    // A different mode is a different key.
    CompileOptions ideal;
    ideal.mode = AllocMode::Ideal;
    auto other = cache.get(src, ideal);
    EXPECT_NE(first.get(), other.get());
    EXPECT_EQ(cache.compileCount(), 2);

    // Different source, same options: also a different key.
    cache.get("void main() { out(2); }", cb);
    EXPECT_EQ(cache.compileCount(), 3);
}

TEST(CompileCache, ProfileCompilationsBypassTheCache)
{
    const char *src = "void main() { out(7); }";
    CompileCache cache;

    CompileOptions first;
    first.mode = AllocMode::CB;
    auto run = runProgram(*cache.get(src, first));

    CompileOptions profiled;
    profiled.mode = AllocMode::CB;
    profiled.weights = WeightPolicy::Profile;
    profiled.profile = &run.profile;
    auto a = cache.get(src, profiled);
    auto b = cache.get(src, profiled);
    EXPECT_NE(a.get(), b.get());
    EXPECT_EQ(cache.compileCount(), 1);
}

TEST(CompileCache, OptionsKeySeparatesEveryKnob)
{
    // One variant per codegen-affecting CompileOptions field. Every
    // pair of option sets — each variant against the default AND
    // against every other variant — must produce a distinct key: two
    // different compilations silently aliasing to one cache entry is
    // the bug this test pins. When a field is added to CompileOptions,
    // extend optionsKey() and this list together (compile_cache.hh).
    std::vector<std::pair<const char *, CompileOptions>> variants;
    auto add = [&](const char *label, auto &&mutate) {
        CompileOptions o;
        mutate(o);
        variants.push_back({label, o});
    };
    add("default", [](CompileOptions &) {});
    add("mode", [](CompileOptions &o) { o.mode = AllocMode::Ideal; });
    add("weights",
        [](CompileOptions &o) { o.weights = WeightPolicy::Uniform; });
    add("alternatingPartitioner",
        [](CompileOptions &o) { o.alternatingPartitioner = true; });
    add("atomicDupStores",
        [](CompileOptions &o) { o.atomicDupStores = true; });
    add("machine.bankWords",
        [](CompileOptions &o) { o.machine.bankWords = 4096; });
    add("machine.stackWords",
        [](CompileOptions &o) { o.machine.stackWords = 512; });
    add("machine.dualPorted",
        [](CompileOptions &o) { o.machine.dualPorted = true; });
    add("optLevel", [](CompileOptions &o) { o.optLevel = 0; });
    add("verifyMc", [](CompileOptions &o) { o.verifyMc = false; });
    add("resilient", [](CompileOptions &o) { o.resilient = true; });
    add("maxErrors", [](CompileOptions &o) { o.maxErrors = 5; });

    for (std::size_t i = 0; i < variants.size(); ++i) {
        for (std::size_t j = i + 1; j < variants.size(); ++j) {
            EXPECT_NE(CompileCache::optionsKey(variants[i].second),
                      CompileCache::optionsKey(variants[j].second))
                << variants[i].first << " vs " << variants[j].first;
        }
    }

    // Same options, independently constructed: same key.
    CompileOptions a, b;
    EXPECT_EQ(CompileCache::optionsKey(a), CompileCache::optionsKey(b));
}

TEST(CompileCache, ConcurrentLookupsCompileOnce)
{
    // Many threads race on a handful of distinct keys; each key must
    // compile exactly once and every requester of a key must receive
    // the same shared result object.
    const std::vector<std::string> sources = {
        "void main() { out(1); }",
        "void main() { out(2); }",
        "void main() { out(3); }",
    };
    const AllocMode modes[] = {AllocMode::SingleBank, AllocMode::CB};
    const int distinct = static_cast<int>(sources.size()) *
                         static_cast<int>(std::size(modes));
    const int rounds = 8;

    CompileCache cache;
    std::vector<std::shared_ptr<const CompileResult>> got(
        static_cast<std::size_t>(distinct) * rounds);
    {
        JobPool pool(8);
        for (int r = 0; r < rounds; ++r) {
            for (std::size_t si = 0; si < sources.size(); ++si) {
                for (std::size_t mi = 0; mi < std::size(modes); ++mi) {
                    std::size_t slot =
                        (r * sources.size() + si) * std::size(modes) +
                        mi;
                    pool.submit([&, si, mi, slot] {
                        CompileOptions opts;
                        opts.mode = modes[mi];
                        got[slot] = cache.get(sources[si], opts);
                    });
                }
            }
        }
        pool.wait();
    }

    EXPECT_EQ(cache.compileCount(), distinct);
    // All rounds of one key saw the identical object.
    for (int r = 1; r < rounds; ++r) {
        for (int k = 0; k < distinct; ++k) {
            EXPECT_EQ(got[static_cast<std::size_t>(r) * distinct + k]
                          .get(),
                      got[k].get())
                << "key " << k << " round " << r;
        }
    }
}

TEST(CompileCache, FailedCompileIsNeverMemoized)
{
    // The daemon-fatal bug class: a transient fault during the owning
    // compile must not leave a poisoned entry that rethrows the stale
    // exception to every future requester. One-shot fault: the first
    // attempt throws, the second compiles clean.
    const char *src = "void main() { out(5); }";
    CompileCache cache;
    FaultPlan plan;
    plan.arm("backend.regalloc");
    ScopedFaultPlan scope(plan);

    CompileOptions opts;
    EXPECT_THROW(cache.get(src, opts), InjectedFault);
    EXPECT_EQ(cache.size(), 0u) << "failed entry must be erased";

    auto result = cache.get(src, opts);
    ASSERT_NE(result, nullptr);
    EXPECT_EQ(runProgram(*result).output[0].asInt(), 5);
    // compileCount counts ATTEMPTS (pinned): the failed first try and
    // the clean second are two units of compile work.
    EXPECT_EQ(cache.compileCount(), 2);

    // The recovered result is memoized normally.
    EXPECT_EQ(cache.get(src, opts).get(), result.get());
    EXPECT_EQ(cache.compileCount(), 2);
}

TEST(CompileCache, ConcurrentWaitersOfAFailingAttemptAllRecover)
{
    // Waiters that joined the faulting attempt share its exception;
    // the key itself stays clean, so everyone's retry succeeds.
    const char *src = "void main() { out(6); }";
    CompileCache cache;
    FaultPlan plan;
    plan.arm("backend.regalloc");
    ScopedFaultPlan scope(plan);

    constexpr int kThreads = 8;
    std::atomic<int> failures{0};
    std::atomic<int> successes{0};
    {
        JobPool pool(kThreads);
        for (int i = 0; i < kThreads; ++i) {
            pool.submit([&] {
                CompileOptions opts;
                try {
                    cache.get(src, opts);
                    ++successes;
                } catch (const InjectedFault &) {
                    ++failures;
                }
            });
        }
        pool.wait();
    }
    // Exactly one attempt hit the one-shot fault; how many waiters
    // shared it depends on timing, but at least one thread failed and
    // nothing is poisoned afterwards.
    EXPECT_GE(failures.load(), 1);
    EXPECT_EQ(failures.load() + successes.load(), kThreads);
    CompileOptions opts;
    EXPECT_NO_THROW(cache.get(src, opts));
}

TEST(CompileCache, UserErrorsAreNotNegativelyCachedEither)
{
    // Bad source fails on every attempt — but each attempt is a fresh
    // compile, not a replay of a stored exception.
    const char *bad = "int main( {{{";
    CompileCache cache;
    CompileOptions opts;
    EXPECT_THROW(cache.get(bad, opts), UserError);
    EXPECT_THROW(cache.get(bad, opts), UserError);
    EXPECT_EQ(cache.compileCount(), 2);
    EXPECT_EQ(cache.size(), 0u);
}

TEST(CompileCache, InvalidateForcesRecompile)
{
    const char *src = "void main() { out(8); }";
    CompileCache cache;
    CompileOptions opts;
    auto first = cache.get(src, opts);
    cache.invalidate(src, opts);
    EXPECT_EQ(cache.size(), 0u);
    auto second = cache.get(src, opts);
    EXPECT_NE(first.get(), second.get());
    EXPECT_EQ(cache.compileCount(), 2);
    // Invalidating an absent key is a no-op.
    cache.invalidate("void main() { out(999); }", opts);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(CompileCache, CapacityBoundEvictsOldestCompleted)
{
    CompileCache cache(2);
    CompileOptions opts;
    cache.get("void main() { out(1); }", opts);
    cache.get("void main() { out(2); }", opts);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.evictionCount(), 0);

    cache.get("void main() { out(3); }", opts);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.evictionCount(), 1);

    // The evicted (oldest) key recompiles; the newest two were kept.
    cache.get("void main() { out(1); }", opts);
    EXPECT_EQ(cache.compileCount(), 4);
    cache.get("void main() { out(3); }", opts);
    EXPECT_EQ(cache.compileCount(), 4);
}

TEST(CompileCache, InvalidateRacingCompletionKeepsBookkeepingExact)
{
    // Regression for a race in the owner's completion bookkeeping: an
    // invalidate() landing between set_value and the bookkeeping lock
    // could admit a successor attempt whose key then got marked
    // completed twice, inflating the eviction order and later evicting
    // an in-flight entry. Generation tracking closes the window; this
    // hammers it (meaningfully under TSan) and checks the accounting
    // stays exact.
    const char *src = "void main() { out(3); }";
    CompileCache cache(4);
    CompileOptions opts;
    std::atomic<bool> done{false};
    std::thread invalidator([&] {
        while (!done.load())
            cache.invalidate(src, opts);
    });
    for (int i = 0; i < 100; ++i)
        ASSERT_NE(cache.get(src, opts), nullptr);
    done.store(true);
    invalidator.join();

    // Fill past capacity: a duplicate completed record would make the
    // size drift from the bound or evict the wrong entry.
    cache.get("void main() { out(10); }", opts);
    cache.get("void main() { out(11); }", opts);
    cache.get("void main() { out(12); }", opts);
    cache.get("void main() { out(13); }", opts);
    EXPECT_LE(cache.size(), 4u);
    cache.get("void main() { out(13); }", opts);
    EXPECT_EQ(cache.size(), 4u);
}

} // namespace
} // namespace dsp

/**
 * @file
 * Pins the dspcc command-line contract: exit codes, degradation
 * warnings, --strict / --werror / --max-errors / --inject behavior.
 *
 * The exit codes are part of the tool's interface (build scripts and
 * the chaos harness branch on them):
 *   0  success
 *   1  user error (bad source, bad usage, unreadable file)
 *   2  internal error (only surfaced in --strict mode, or when even
 *      the degradation ladder cannot produce a binary)
 *   3  degraded compile with --werror
 *
 * The binary's path arrives via the DSPCC_BIN compile definition
 * (tests/CMakeLists.txt points it at $<TARGET_FILE:dspcc>).
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace
{

/** RAII temp file in the test's working directory. */
struct TempFile
{
    std::string path;

    TempFile(const std::string &name, const std::string &contents)
        : path(name)
    {
        std::ofstream out(path);
        out << contents;
    }
    ~TempFile() { std::remove(path.c_str()); }
};

struct CliResult
{
    int exitCode = -1;
    std::string stdoutText;
    std::string stderrText;
};

/** Run dspcc with @p args, capturing the exit code and both output
 *  streams. The capture files are keyed by PID: ctest runs each TEST
 *  as its own process, concurrently, in one working directory. */
CliResult
runDspcc(const std::string &args)
{
    std::string key = std::to_string(::getpid());
    std::string out_path = "dspcc_cli_test_stdout." + key + ".txt";
    std::string err_path = "dspcc_cli_test_stderr." + key + ".txt";
    std::string cmd = std::string(DSPCC_BIN) + " " + args + " >" +
                      out_path + " 2>" + err_path;
    int status = std::system(cmd.c_str());

    CliResult r;
    r.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    auto slurp = [](const std::string &path) {
        std::ifstream in(path);
        std::ostringstream ss;
        ss << in.rdbuf();
        std::remove(path.c_str());
        return ss.str();
    };
    r.stdoutText = slurp(out_path);
    r.stderrText = slurp(err_path);
    return r;
}

const char *const kGoodProgram = "void main() { out(2 + 3); }\n";

TEST(DspccCli, SuccessExitsZero)
{
    TempFile src("dspcc_cli_ok.c", kGoodProgram);
    CliResult r = runDspcc(src.path);
    EXPECT_EQ(r.exitCode, 0) << r.stderrText;
}

TEST(DspccCli, SyntaxErrorExitsOneAndReportsEveryError)
{
    // Three independent statement-level errors: recovery must surface
    // all three before the compile fails.
    TempFile src("dspcc_cli_bad.c",
                 "void main() {\n"
                 "    int a = ;\n"
                 "    int b = 1;\n"
                 "    b = * 2;\n"
                 "    out(;\n"
                 "}\n");
    CliResult r = runDspcc(src.path);
    EXPECT_EQ(r.exitCode, 1) << r.stderrText;
    // All three diagnostics arrive in one UserError report.
    int errors = 0;
    for (std::size_t pos = 0;
         (pos = r.stderrText.find("error:", pos)) != std::string::npos;
         ++pos)
        ++errors;
    EXPECT_GE(errors, 3) << r.stderrText;
}

TEST(DspccCli, MaxErrorsCapsTheReport)
{
    TempFile src("dspcc_cli_cap.c",
                 "void main() {\n"
                 "    int a = ;\n"
                 "    int b = ;\n"
                 "    int c = ;\n"
                 "    int d = ;\n"
                 "}\n");
    CliResult r = runDspcc("--max-errors=2 " + src.path);
    EXPECT_EQ(r.exitCode, 1) << r.stderrText;
    EXPECT_NE(r.stderrText.find("too many errors"), std::string::npos)
        << r.stderrText;
}

TEST(DspccCli, BadUsageExitsOne)
{
    EXPECT_EQ(runDspcc("").exitCode, 1);
    EXPECT_EQ(runDspcc("--definitely-not-a-flag whatever.c").exitCode,
              1);
    EXPECT_EQ(runDspcc("--mode=bogus whatever.c").exitCode, 1);
}

TEST(DspccCli, MissingFileExitsOne)
{
    CliResult r = runDspcc("dspcc_cli_test_no_such_file.c");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.stderrText.find("cannot open"), std::string::npos);
}

TEST(DspccCli, InjectedFaultDegradesGracefullyByDefault)
{
    TempFile src("dspcc_cli_inject.c", kGoodProgram);
    CliResult r = runDspcc("--inject=opt.dce " + src.path);
    EXPECT_EQ(r.exitCode, 0) << r.stderrText;
    EXPECT_NE(r.stderrText.find("warning: degraded"), std::string::npos)
        << r.stderrText;
    EXPECT_NE(r.stderrText.find("opt.dce"), std::string::npos)
        << r.stderrText;
}

TEST(DspccCli, WerrorTurnsDegradationIntoExitThree)
{
    TempFile src("dspcc_cli_werror.c", kGoodProgram);
    CliResult r =
        runDspcc("--werror --inject=backend.regalloc " + src.path);
    EXPECT_EQ(r.exitCode, 3) << r.stderrText;
    EXPECT_NE(r.stderrText.find("backend.regalloc"), std::string::npos)
        << r.stderrText;
}

TEST(DspccCli, StrictModeSurfacesInternalErrorsAsExitTwo)
{
    TempFile src("dspcc_cli_strict.c", kGoodProgram);
    CliResult r = runDspcc("--strict --inject=mcverify " + src.path);
    EXPECT_EQ(r.exitCode, 2) << r.stderrText;
    EXPECT_NE(r.stderrText.find("internal error"), std::string::npos)
        << r.stderrText;
}

TEST(DspccCli, TelemetryFlagsWriteParseableFiles)
{
    TempFile src("dspcc_cli_trace.c", kGoodProgram);
    const std::string trace_path = "dspcc_cli_trace.trace.json";
    const std::string stats_path = "dspcc_cli_trace.stats.json";
    CliResult r = runDspcc("--trace-out=" + trace_path +
                           " --stats-out=" + stats_path + " " +
                           src.path);
    EXPECT_EQ(r.exitCode, 0) << r.stderrText;

    auto slurp = [](const std::string &path) {
        std::ifstream in(path);
        EXPECT_TRUE(static_cast<bool>(in)) << path;
        std::ostringstream ss;
        ss << in.rdbuf();
        std::remove(path.c_str());
        return ss.str();
    };
    std::string trace = slurp(trace_path);
    std::string stats = slurp(stats_path);
    // Full strict parsing is covered by the obs tier; here pin that
    // the CLI actually produced both documents with their signature
    // keys.
    EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(trace.find("\"compile\""), std::string::npos);
    EXPECT_NE(stats.find("\"dsp-stats-v2\""), std::string::npos);
}

TEST(DspccCli, ExplainPartitionExitsZero)
{
    TempFile src("dspcc_cli_explain.c",
                 "int a[4]; int b[4];\n"
                 "void main() {\n"
                 "    int s = 0;\n"
                 "    for (int i = 0; i < 4; i++) s = s + a[i] * b[i];\n"
                 "    out(s);\n"
                 "}\n");
    CliResult r = runDspcc("--explain-partition " + src.path);
    EXPECT_EQ(r.exitCode, 0) << r.stderrText;
}

TEST(DspccCli, EmptyTelemetryPathIsBadUsage)
{
    EXPECT_EQ(runDspcc("--trace-out= whatever.c").exitCode, 1);
    EXPECT_EQ(runDspcc("--stats-out= whatever.c").exitCode, 1);
    EXPECT_EQ(runDspcc("--profile-out= whatever.c").exitCode, 1);
}

TEST(DspccCli, DashOutputPathMeansStdout)
{
    TempFile src("dspcc_cli_dash.c", kGoodProgram);
    CliResult r = runDspcc("--stats-out=- " + src.path);
    EXPECT_EQ(r.exitCode, 0) << r.stderrText;
    EXPECT_NE(r.stdoutText.find("\"dsp-stats-v2\""), std::string::npos)
        << r.stdoutText;

    r = runDspcc("--trace-out=- " + src.path);
    EXPECT_EQ(r.exitCode, 0) << r.stderrText;
    EXPECT_NE(r.stdoutText.find("\"traceEvents\""), std::string::npos)
        << r.stdoutText;
}

const char *const kLoopProgram =
    "int a[8]; int b[8];\n"
    "void main() {\n"
    "    int s = 0;\n"
    "    for (int i = 0; i < 8; i++) { a[i] = i; b[i] = i + 1; }\n"
    "    for (int i = 0; i < 8; i++) s = s + a[i] * b[i];\n"
    "    out(s);\n"
    "}\n";

/** @p text without the `[MODE] ... cycles` summary lines dspcc always
 *  prints, leaving only the requested document. */
std::string
withoutSummaryLines(const std::string &text)
{
    std::istringstream in(text);
    std::ostringstream out;
    std::string line;
    while (std::getline(in, line))
        if (line.empty() || line[0] != '[')
            out << line << '\n';
    return out.str();
}

TEST(DspccCli, ProfileOutDashEmitsTheArtifactOnStdout)
{
    TempFile src("dspcc_cli_prof.c", kLoopProgram);
    CliResult r = runDspcc("--profile-out=- " + src.path);
    EXPECT_EQ(r.exitCode, 0) << r.stderrText;
    EXPECT_NE(r.stdoutText.find("\"dsp-profile-v1\""),
              std::string::npos)
        << r.stdoutText;
    EXPECT_NE(r.stdoutText.find("\"blocks\""), std::string::npos);
}

TEST(DspccCli, ProfileIsIdenticalAcrossEngines)
{
    TempFile src("dspcc_cli_prof_eng.c", kLoopProgram);
    CliResult fast =
        runDspcc("--fidelity=fast --profile-out=- " + src.path);
    CliResult instrumented =
        runDspcc("--fidelity=instrumented --profile-out=- " + src.path);
    EXPECT_EQ(fast.exitCode, 0) << fast.stderrText;
    EXPECT_EQ(instrumented.exitCode, 0) << instrumented.stderrText;
    EXPECT_EQ(withoutSummaryLines(fast.stdoutText),
              withoutSummaryLines(instrumented.stdoutText));
}

TEST(DspccCli, ProfileReportPrintsTheRanking)
{
    TempFile src("dspcc_cli_prof_rep.c", kLoopProgram);
    CliResult r = runDspcc("--profile-report " + src.path);
    EXPECT_EQ(r.exitCode, 0) << r.stderrText;
    EXPECT_NE(r.stdoutText.find("hot blocks (by cycles):"),
              std::string::npos)
        << r.stdoutText;
    EXPECT_NE(r.stdoutText.find("bank traffic and conflicts"),
              std::string::npos);
}

TEST(DspccCli, BadFidelityIsBadUsage)
{
    CliResult r = runDspcc("--fidelity=bogus whatever.c");
    EXPECT_EQ(r.exitCode, 1);
    // The rejection names the bad value and lists every valid engine.
    EXPECT_NE(r.stderrText.find("unknown fidelity 'bogus'"),
              std::string::npos)
        << r.stderrText;
    for (const char *name : {"instrumented", "fast", "threaded"})
        EXPECT_NE(r.stderrText.find(name), std::string::npos)
            << "missing '" << name << "' in: " << r.stderrText;
}

TEST(DspccCli, ThreadedFidelityMatchesInstrumentedRun)
{
    TempFile src("dspcc_cli_thr.c", kLoopProgram);
    CliResult thr = runDspcc("--fidelity=threaded " + src.path);
    CliResult instrumented =
        runDspcc("--fidelity=instrumented " + src.path);
    EXPECT_EQ(thr.exitCode, 0) << thr.stderrText;
    EXPECT_EQ(instrumented.exitCode, 0) << instrumented.stderrText;
    // Same cycles / ops / output summary, word for word.
    EXPECT_EQ(thr.stdoutText, instrumented.stdoutText);
}

TEST(DspccCli, InjectedSimMemFaultIsAMachineFault)
{
    // Machine faults (including injected ones) are user-level errors:
    // exit 1, not an internal-error exit 2. The program needs real
    // memory traffic for the armed fault to trigger.
    TempFile src("dspcc_cli_simmem.c",
                 "int a[4];\n"
                 "void main() {\n"
                 "    for (int i = 0; i < 4; i++) a[i] = i;\n"
                 "    out(a[3]);\n"
                 "}\n");
    CliResult r = runDspcc("--inject=sim.mem:1 " + src.path);
    EXPECT_EQ(r.exitCode, 1) << r.stderrText;
    EXPECT_NE(r.stderrText.find("injected memory fault"),
              std::string::npos)
        << r.stderrText;
}

} // namespace

/**
 * @file
 * Cross-mode property fuzzing: pseudo-random MiniC programs must
 * produce bit-identical output streams under every allocation mode and
 * at every optimization level. Data allocation, duplication, and
 * compaction are performance transformations; any observable
 * difference is a compiler or simulator bug.
 */

#include <gtest/gtest.h>

#include "driver/compiler.hh"

namespace dsp
{
namespace
{

class Rng
{
  public:
    explicit Rng(uint32_t seed) : state(seed * 2654435761u + 12345u) {}

    uint32_t
    next()
    {
        state = state * 1664525u + 1013904223u;
        return state >> 7;
    }

    int
    range(int lo, int hi) // inclusive
    {
        return lo + static_cast<int>(next() % (hi - lo + 1));
    }

    template <typename T>
    const T &
    pick(const std::vector<T> &v)
    {
        return v[next() % v.size()];
    }

  private:
    uint32_t state;
};

/** Generate a random but well-defined MiniC program. */
std::string
generateProgram(uint32_t seed, int &input_words)
{
    Rng rng(seed);
    const int asize = 16;
    int narrays = rng.range(2, 4);
    std::vector<std::string> arrays;
    std::string src;
    for (int i = 0; i < narrays; ++i) {
        arrays.push_back("g" + std::to_string(i));
        src += "int " + arrays.back() + "[" + std::to_string(asize) +
               "];\n";
    }
    src += "void main() {\n";

    // Fill arrays: from input or from formulas.
    input_words = 0;
    for (int i = 0; i < narrays; ++i) {
        if (rng.range(0, 1) == 0) {
            src += "    for (int i = 0; i < " + std::to_string(asize) +
                   "; i++) " + arrays[i] + "[i] = in();\n";
            input_words += asize;
        } else {
            int mul = rng.range(1, 9);
            int add = rng.range(-20, 20);
            src += "    for (int i = 0; i < " + std::to_string(asize) +
                   "; i++) " + arrays[i] + "[i] = i * " +
                   std::to_string(mul) + " + " + std::to_string(add) +
                   ";\n";
        }
    }
    src += "    int acc = 0;\n";

    const std::vector<std::string> binops = {"+", "-", "*", "&", "|",
                                             "^"};
    int nstmts = rng.range(2, 5);
    for (int s = 0; s < nstmts; ++s) {
        switch (rng.range(0, 4)) {
          case 0: {
            // Elementwise combine.
            const std::string &d = rng.pick(arrays);
            const std::string &x = rng.pick(arrays);
            const std::string &y = rng.pick(arrays);
            src += "    for (int i = 0; i < " + std::to_string(asize) +
                   "; i++) " + d + "[i] = " + x + "[i] " +
                   rng.pick(binops) + " " + y + "[i];\n";
            break;
          }
          case 1: {
            // Reduction.
            const std::string &x = rng.pick(arrays);
            const std::string &y = rng.pick(arrays);
            src += "    for (int i = 0; i < " + std::to_string(asize) +
                   "; i++) acc += " + x + "[i] * " + y + "[i];\n";
            break;
          }
          case 2: {
            // Same-array lag access (the Figure 6 pattern).
            const std::string &x = rng.pick(arrays);
            int lag = rng.range(1, 3);
            src += "    for (int i = 0; i < " +
                   std::to_string(asize - lag) + "; i++) acc += " + x +
                   "[i] " + rng.pick(binops) + " " + x + "[i + " +
                   std::to_string(lag) + "];\n";
            break;
          }
          case 3: {
            // Conditional update inside a loop.
            const std::string &x = rng.pick(arrays);
            int thr = rng.range(-10, 60);
            src += "    for (int i = 0; i < " + std::to_string(asize) +
                   "; i++) { if (" + x + "[i] > " +
                   std::to_string(thr) + ") acc += " + x +
                   "[i]; else acc -= 1; }\n";
            break;
          }
          case 4: {
            // Strided writes with shifts.
            const std::string &x = rng.pick(arrays);
            int sh = rng.range(1, 3);
            src += "    for (int i = 0; i < " + std::to_string(asize) +
                   "; i++) " + x + "[i] = (" + x + "[i] << " +
                   std::to_string(sh) + ") ^ (acc >> 2);\n";
            break;
          }
        }
    }

    // Outputs: checksum plus a few sampled elements.
    src += "    out(acc);\n";
    src += "    int chk = 0;\n";
    for (int i = 0; i < narrays; ++i) {
        src += "    for (int i = 0; i < " + std::to_string(asize) +
               "; i++) chk = chk * 31 + " + arrays[i] + "[i];\n";
    }
    src += "    out(chk);\n";
    src += "    out(" + arrays[0] + "[" +
           std::to_string(rng.range(0, asize - 1)) + "]);\n";
    src += "}\n";
    return src;
}

class CrossModeFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(CrossModeFuzz, AllModesAgree)
{
    uint32_t seed = static_cast<uint32_t>(GetParam());
    int input_words = 0;
    std::string src = generateProgram(seed, input_words);

    std::vector<int32_t> input;
    Rng rng(seed ^ 0xDEAD);
    for (int i = 0; i < input_words; ++i)
        input.push_back(rng.range(-100, 100));

    // Reference: optimizer off, single bank.
    CompileOptions ref_opts;
    ref_opts.optLevel = 0;
    ref_opts.mode = AllocMode::SingleBank;
    auto ref =
        runProgram(compileSource(src, ref_opts), packInputInts(input));
    ASSERT_GE(ref.output.size(), 3u);

    for (AllocMode mode :
         {AllocMode::SingleBank, AllocMode::CB, AllocMode::CBDup,
          AllocMode::FullDup, AllocMode::Ideal}) {
        CompileOptions opts;
        opts.mode = mode;
        auto r =
            runProgram(compileSource(src, opts), packInputInts(input));
        EXPECT_EQ(r.output, ref.output)
            << "mode " << allocModeName(mode) << "\n"
            << src;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossModeFuzz, ::testing::Range(1, 41));

} // namespace
} // namespace dsp

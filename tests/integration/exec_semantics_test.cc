/**
 * @file
 * Execution-semantics sweep: each case is one MiniC program and its
 * expected output computed by hand or by a trivially-correct host
 * expression. Exercises corner semantics — operator edge cases, mixed
 * types, evaluation order, scoping — end to end through the compiler
 * and simulator.
 */

#include <cstring>

#include <gtest/gtest.h>

#include "driver/compiler.hh"

namespace dsp
{
namespace
{

uint32_t
fbits(float f)
{
    uint32_t w;
    std::memcpy(&w, &f, sizeof(w));
    return w;
}

struct ExecCase
{
    const char *name;
    const char *src;
    std::vector<uint32_t> input;
    std::vector<uint32_t> expected;
};

class ExecSemantics : public ::testing::TestWithParam<ExecCase>
{
};

TEST_P(ExecSemantics, Matches)
{
    const ExecCase &c = GetParam();
    for (AllocMode mode : {AllocMode::SingleBank, AllocMode::CB,
                           AllocMode::Ideal}) {
        CompileOptions opts;
        opts.mode = mode;
        auto r = runProgram(compileSource(c.src, opts), c.input);
        ASSERT_EQ(r.output.size(), c.expected.size());
        for (std::size_t i = 0; i < c.expected.size(); ++i)
            EXPECT_EQ(r.output[i].raw, c.expected[i]) << "word " << i;
    }
}

std::vector<uint32_t>
words(std::initializer_list<int32_t> vs)
{
    std::vector<uint32_t> out;
    for (int32_t v : vs)
        out.push_back(static_cast<uint32_t>(v));
    return out;
}

const ExecCase kCases[] = {
    {"NegativeDivisionTruncatesTowardZero",
     "void main() { out(-7 / 2); out(7 / -2); out(-7 % 2); }",
     {},
     words({-3, -3, -1})},

    {"ShiftSemantics",
     "void main() { out(1 << 31); out(-8 >> 1); out(-1 >> 31); }",
     {},
     words({int32_t(0x80000000), -4, -1})},

    {"LogicalShortCircuitSkipsSideEffects",
     // in() must NOT be consumed when the left side decides.
     "void main() { int t = 0; if (1 == 1 || in() > 0) t = 1;"
     " if (0 == 1 && in() > 0) t = 2; out(t); out(in()); }",
     words({42}),
     words({1, 42})},

    {"ChainedComparisonValues",
     "void main() { int a = 5; out((a > 1) + (a > 2) + (a > 9)); }",
     {},
     words({2})},

    {"AssignmentYieldsValue",
     "void main() { int a; int b; a = b = 7; out(a + b);"
     " int c = (a = 2) + a; out(c); }",
     {},
     words({14, 4})},

    {"EvaluationOrderLeftToRight",
     "void main() { out(in() - in()); }",
     words({10, 3}),
     words({7})},

    {"WhileZeroTrips",
     "void main() { int n = 0; while (n > 0) n--; out(n);"
     " for (int i = 5; i < 5; i++) n++; out(n); }",
     {},
     words({0, 0})},

    {"DoWhileRunsOnce",
     "void main() { int n = 10; do n++; while (n < 0); out(n); }",
     {},
     words({11})},

    {"NestedBreakOnlyExitsInner",
     "void main() { int c = 0;"
     " for (int i = 0; i < 3; i++)"
     "   for (int j = 0; j < 10; j++) { if (j == 2) break; c++; }"
     " out(c); }",
     {},
     words({6})},

    {"ContinueSkipsRestOfBody",
     "void main() { int s = 0;"
     " for (int i = 0; i < 10; i++) { if (i % 2 == 1) continue; s += i; }"
     " out(s); }",
     {},
     words({20})},

    {"GlobalScalarsAreMemoryResident",
     "int g = 3;"
     "void bump() { g = g + 4; }"
     "void main() { bump(); bump(); out(g); }",
     {},
     words({11})},

    {"TwoDimRowMajorLayout",
     "int m[2][3];"
     "void main() { int k = 0;"
     " for (int i = 0; i < 2; i++)"
     "  for (int j = 0; j < 3; j++) { m[i][j] = k; k++; }"
     " out(m[1][0]); out(m[0][2]); }",
     {},
     words({3, 2})},

    {"FloatComparisons",
     "void main() { float a = 0.5; float b = 0.25;"
     " out(a > b); out(a == a); out(b >= a); out(a != b); }",
     {},
     words({1, 1, 0, 1})},

    {"FloatTruncationOnCast",
     "void main() { out((int)2.99); out((int)-2.99); out((int)0.5); }",
     {},
     words({2, -2, 0})},

    {"MixedTypePromotion",
     "void main() { int i = 3; float f = 0.5;"
     " outf(i * f); outf(i / 2.0); out(i / 2); }",
     {},
     {fbits(1.5f), fbits(1.5f), 1u}},

    {"UnaryChains",
     "void main() { int x = 5; out(- -x); out(!!x); out(~~x); out(!0); }",
     {},
     words({5, 1, 5, 1})},

    {"PostPreIncrementValues",
     "void main() { int i = 5; out(i++); out(i); out(++i); out(i--);"
     " out(--i); }",
     {},
     words({5, 6, 7, 7, 5})},

    {"RecursiveFibonacci",
     "int fib(int n) { if (n < 2) return n;"
     " return fib(n - 1) + fib(n - 2); }"
     "void main() { out(fib(12)); }",
     {},
     words({144})},

    {"MutualRecursion",
     "int isEven(int n) { if (n == 0) return 1; return isOdd(n - 1); }"
     "int isOdd(int n) { if (n == 0) return 0; return isEven(n - 1); }"
     "void main() { out(isEven(10)); out(isOdd(7)); }",
     {},
     words({1, 1})},

    {"ArrayParamWritesVisibleToCaller",
     "int buf[4];"
     "void fill(int v[], int n) { for (int i = 0; i < n; i++)"
     " v[i] = i * i; }"
     "void main() { fill(buf, 4); out(buf[3]); }",
     {},
     words({9})},

    {"LocalArrayPerCall",
     "int sum(int seed) { int t[4]; for (int i = 0; i < 4; i++)"
     " t[i] = seed + i; return t[0] + t[3]; }"
     "void main() { out(sum(10) + sum(100)); }",
     {},
     words({10 + 13 + 100 + 103})},

    {"BitwiseIdentity",
     "void main() { int x = in(); int m = 986895;"
     " out((x & m) | (x & ~m) ^ 0); }",
     words({123456789}),
     words({123456789})},
};

INSTANTIATE_TEST_SUITE_P(Programs, ExecSemantics,
                         ::testing::ValuesIn(kCases),
                         [](const auto &info) {
                             return std::string(info.param.name);
                         });

} // namespace
} // namespace dsp

/**
 * @file
 * Duplicated-data interrupt coherence (paper §3.2).
 *
 * "Because stores to different copies of duplicated data may be
 * scheduled in different instructions, it is possible that an
 * interrupt may occur after the instruction containing a store to one
 * copy and before the instruction containing the store to the other
 * copy." The paper's remedy is a store-lock/store-unlock pair; our
 * implementation models it as interrupt-atomic store pairs
 * (CompileOptions::atomicDupStores).
 *
 * These tests deliver interrupts at every cycle and have the handler
 * watch both copies of a duplicated array. With atomic pairs the
 * handler must never observe the copies mid-divergence.
 */

#include <gtest/gtest.h>

#include "driver/compiler.hh"

namespace dsp
{
namespace
{

const char *kProgram = R"(
    int sig[16];
    int R[8];
    void main() {
        // Stores to the duplicated array, interleaved with enough
        // arithmetic that the compaction pass may split the X/Y store
        // pairs across instructions.
        for (int i = 0; i < 16; i++) {
            int v = in();
            int w = v * 3 + (v >> 2);
            sig[i] = w - (w >> 4);
        }
        for (int m = 0; m < 8; m++) {
            int s = 0;
            for (int n = 0; n < 8; n++)
                s += sig[n] * sig[n + m];
            R[m] = s;
        }
        for (int m = 0; m < 8; m++)
            out(R[m]);
    }
)";

struct Observation
{
    long checks = 0;
    long divergent = 0;
};

Observation
observe(bool atomic_pairs)
{
    CompileOptions opts;
    opts.mode = AllocMode::CBDup;
    opts.atomicDupStores = atomic_pairs;
    auto compiled = compileSource(kProgram, opts);

    DataObject *sig = compiled.module->findGlobal("sig");
    EXPECT_NE(sig, nullptr);
    EXPECT_TRUE(sig->duplicated);

    Simulator sim(compiled.program, *compiled.module);
    std::vector<int32_t> input;
    for (int i = 0; i < 16; ++i)
        input.push_back(100 + 17 * i);
    sim.setInput(packInputInts(input));

    Observation obs;
    sim.setInterruptPeriod(1); // fire between every pair of cycles
    sim.setInterruptHandler([&](Simulator &s) {
        for (int i = 0; i < sig->size; ++i) {
            auto [ax, ay] = s.objectAddresses(*sig, i);
            ++obs.checks;
            if (s.readMem(ax) != s.readMem(ay))
                ++obs.divergent;
        }
    });
    sim.run();

    // Whatever the interrupts observed, the program's own output must
    // be correct.
    CompileOptions ref_opts;
    ref_opts.mode = AllocMode::SingleBank;
    auto ref = runProgram(compileSource(kProgram, ref_opts),
                          packInputInts(input));
    EXPECT_EQ(sim.output().size(), ref.output.size());
    for (std::size_t i = 0; i < ref.output.size(); ++i)
        EXPECT_EQ(sim.output()[i].raw, ref.output[i].raw);
    return obs;
}

TEST(DupInterrupts, AtomicPairsMaskMidUpdateWindows)
{
    Observation atomic = observe(true);
    EXPECT_GT(atomic.checks, 0);
    EXPECT_EQ(atomic.divergent, 0);
}

TEST(DupInterrupts, UnprotectedPairsCanBeObservedDiverging)
{
    // Without the lock pairing, interrupts may land between the two
    // stores of a pair. This is the hazard the paper describes; we
    // record (and report) whether this schedule actually exposes it.
    Observation plain = observe(false);
    EXPECT_GT(plain.checks, 0);
    // Not asserted > 0: whether a divergent window exists depends on
    // the schedule. It is asserted that enabling atomic pairs is never
    // worse (see the companion test) and correctness is unaffected.
    RecordProperty("divergent_windows",
                   std::to_string(plain.divergent));
}

TEST(DupInterrupts, AtomicPairsCostNoCycles)
{
    CompileOptions plain_opts;
    plain_opts.mode = AllocMode::CBDup;
    auto plain = compileSource(kProgram, plain_opts);

    CompileOptions atomic_opts;
    atomic_opts.mode = AllocMode::CBDup;
    atomic_opts.atomicDupStores = true;
    auto atomic = compileSource(kProgram, atomic_opts);

    // The lock semantics ride on the existing stores (paper: "a
    // special pair of store operations"), so the schedules are
    // identical in length.
    EXPECT_EQ(plain.program.instructionWords(),
              atomic.program.instructionWords());
}

} // namespace
} // namespace dsp

/**
 * @file
 * Regression guards for the paper's headline results. These assert the
 * qualitative shapes of Figures 7/8 and Table 3 so that compiler
 * changes cannot silently destroy the reproduction. Thresholds are
 * deliberately loose — they encode orderings and bands, not exact
 * cycle counts.
 */

#include <gtest/gtest.h>

#include "driver/compiler.hh"
#include "suite/suite.hh"

namespace dsp
{
namespace
{

struct Numbers
{
    long base = 0;
    long cb = 0;
    long dup = 0;
    long full = 0;
    long ideal = 0;
    long costBase = 0;
    long costDup = 0;
    long costFull = 0;
};

Numbers
measure(const std::string &name)
{
    const Benchmark *b = findBenchmark(name);
    EXPECT_NE(b, nullptr) << name;
    Numbers n;
    auto one = [&](AllocMode mode, long *cost_out) {
        CompileOptions opts;
        opts.mode = mode;
        auto compiled = compileSource(b->source, opts);
        auto run = runProgram(compiled, b->input);
        if (cost_out)
            *cost_out = computeCost(compiled, run).total();
        return run.stats.cycles;
    };
    n.base = one(AllocMode::SingleBank, &n.costBase);
    n.cb = one(AllocMode::CB, nullptr);
    n.dup = one(AllocMode::CBDup, &n.costDup);
    n.full = one(AllocMode::FullDup, &n.costFull);
    n.ideal = one(AllocMode::Ideal, nullptr);
    return n;
}

double
gain(long base, long v)
{
    return 100.0 * (base - v) / base;
}

TEST(PaperShapes, FirKernelGainsLargeAndCbMatchesIdeal)
{
    Numbers n = measure("fir_256_64");
    EXPECT_GT(gain(n.base, n.cb), 25.0);
    EXPECT_EQ(n.cb, n.ideal);
}

TEST(PaperShapes, EveryKernelGainsFromCb)
{
    for (const Benchmark &b : kernelBenchmarks()) {
        Numbers n = measure(b.name);
        EXPECT_GT(gain(n.base, n.cb), 0.0) << b.name;
        // Ideal dominates every software technique.
        EXPECT_LE(n.ideal, n.cb) << b.name;
        EXPECT_LE(n.ideal, n.dup) << b.name;
    }
}

TEST(PaperShapes, LpcDuplicationStory)
{
    Numbers n = measure("lpc");
    double cb_gain = gain(n.base, n.cb);
    double dup_gain = gain(n.base, n.dup);
    double ideal_gain = gain(n.base, n.ideal);
    // Paper: CB 3%, Dup 34%, Ideal 36%.
    EXPECT_LT(cb_gain, 10.0);
    EXPECT_GT(dup_gain, 20.0);
    EXPECT_GT(dup_gain, cb_gain + 15.0);
    EXPECT_GE(dup_gain + 3.0, ideal_gain);
}

TEST(PaperShapes, ControlDominatedAppsGainNothing)
{
    for (const char *name : {"adpcm", "G721MLencode", "G721MLdecode",
                             "G721WFencode", "histogram"}) {
        Numbers n = measure(name);
        EXPECT_LT(gain(n.base, n.cb), 2.0) << name;
        EXPECT_LT(gain(n.base, n.ideal), 6.0) << name;
    }
}

TEST(PaperShapes, FullDuplicationNeverCostEffective)
{
    // Table 3: PCR < 1 for every application that stores any data.
    for (const Benchmark &b : applicationBenchmarks()) {
        Numbers n = measure(b.name);
        double pg = double(n.base) / n.full;
        double ci = double(n.costFull) / n.costBase;
        double pcr = pg / ci;
        EXPECT_LE(pcr, 1.001) << b.name;
    }
}

TEST(PaperShapes, PartialDuplicationCostNearBaseline)
{
    // Table 3: partial duplication's mean cost increase ~1%.
    double sum_ci = 0.0;
    int count = 0;
    for (const Benchmark &b : applicationBenchmarks()) {
        Numbers n = measure(b.name);
        sum_ci += double(n.costDup) / n.costBase;
        ++count;
    }
    EXPECT_LT(sum_ci / count, 1.10);
}

TEST(PaperShapes, ApplicationsGainLessThanKernels)
{
    double kernel_sum = 0.0, app_sum = 0.0;
    for (const Benchmark &b : kernelBenchmarks())
        kernel_sum += gain(measure(b.name).base, measure(b.name).cb);
    for (const Benchmark &b : applicationBenchmarks())
        app_sum += gain(measure(b.name).base, measure(b.name).cb);
    double kernel_avg = kernel_sum / kernelBenchmarks().size();
    double app_avg = app_sum / applicationBenchmarks().size();
    EXPECT_GT(kernel_avg, app_avg);
}

} // namespace
} // namespace dsp

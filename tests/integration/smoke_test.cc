/**
 * @file
 * End-to-end smoke tests: compile tiny MiniC programs in every
 * allocation mode and check the simulator's observable output.
 */

#include <gtest/gtest.h>

#include "driver/compiler.hh"

namespace dsp
{
namespace
{

std::vector<int32_t>
runInts(const std::string &src, AllocMode mode,
        const std::vector<int32_t> &input = {})
{
    CompileOptions opts;
    opts.mode = mode;
    auto compiled = compileSource(src, opts);
    auto run = runProgram(compiled, packInputInts(input));
    std::vector<int32_t> out;
    for (const OutputWord &w : run.output)
        out.push_back(w.asInt());
    return out;
}

const AllocMode kAllModes[] = {
    AllocMode::SingleBank, AllocMode::CB, AllocMode::CBDup,
    AllocMode::FullDup, AllocMode::Ideal,
};

TEST(Smoke, OutputConstant)
{
    const char *src = "void main() { out(42); }";
    for (AllocMode mode : kAllModes)
        EXPECT_EQ(runInts(src, mode), (std::vector<int32_t>{42}));
}

TEST(Smoke, Arithmetic)
{
    const char *src = R"(
        void main() {
            int a = 7;
            int b = 5;
            out(a + b);
            out(a - b);
            out(a * b);
            out(a / b);
            out(a % b);
        }
    )";
    for (AllocMode mode : kAllModes)
        EXPECT_EQ(runInts(src, mode),
                  (std::vector<int32_t>{12, 2, 35, 1, 2}));
}

TEST(Smoke, GlobalArraysLoop)
{
    const char *src = R"(
        int A[8] = {1, 2, 3, 4, 5, 6, 7, 8};
        int B[8] = {8, 7, 6, 5, 4, 3, 2, 1};
        void main() {
            int sum = 0;
            for (int i = 0; i < 8; i++)
                sum += A[i] * B[i];
            out(sum);
        }
    )";
    for (AllocMode mode : kAllModes)
        EXPECT_EQ(runInts(src, mode), (std::vector<int32_t>{120}));
}

TEST(Smoke, ControlFlow)
{
    const char *src = R"(
        void main() {
            int n = in();
            if (n > 10 && n < 20) out(1); else out(0);
            int i = 0;
            while (i < n) i++;
            out(i);
            int count = 0;
            do { count++; } while (count < 3);
            out(count);
        }
    )";
    for (AllocMode mode : kAllModes)
        EXPECT_EQ(runInts(src, mode, {15}),
                  (std::vector<int32_t>{1, 15, 3}));
}

TEST(Smoke, FunctionsAndLocals)
{
    const char *src = R"(
        int square(int x) { return x * x; }
        int sum3(int a, int b, int c) { return a + b + c; }
        void main() {
            out(square(9));
            out(sum3(1, 2, 3));
            out(square(square(2)));
        }
    )";
    for (AllocMode mode : kAllModes)
        EXPECT_EQ(runInts(src, mode),
                  (std::vector<int32_t>{81, 6, 16}));
}

TEST(Smoke, ArrayParams)
{
    const char *src = R"(
        int buf[4];
        int total(int v[], int n) {
            int s = 0;
            for (int i = 0; i < n; i++) s += v[i];
            return s;
        }
        void main() {
            for (int i = 0; i < 4; i++) buf[i] = i + 1;
            out(total(buf, 4));
        }
    )";
    for (AllocMode mode : kAllModes)
        EXPECT_EQ(runInts(src, mode), (std::vector<int32_t>{10}));
}

TEST(Smoke, FloatPipeline)
{
    const char *src = R"(
        float coef[4] = {0.5, 0.25, 0.125, 0.0625};
        void main() {
            float acc = 0.0;
            for (int i = 0; i < 4; i++)
                acc += coef[i] * 16.0;
            out((int)acc);
        }
    )";
    for (AllocMode mode : kAllModes)
        EXPECT_EQ(runInts(src, mode), (std::vector<int32_t>{15}));
}

TEST(Smoke, SameArrayAccessesNeedDuplication)
{
    // The paper's autocorrelation pattern (Figure 6).
    const char *src = R"(
        int signal[16];
        int R[4];
        void main() {
            for (int i = 0; i < 16; i++) signal[i] = i;
            for (int m = 0; m < 4; m++) {
                int acc = 0;
                for (int n = 0; n < 12; n++)
                    acc += signal[n] * signal[n + m];
                R[m] = acc;
            }
            for (int m = 0; m < 4; m++) out(R[m]);
        }
    )";
    std::vector<int32_t> expected;
    {
        int sig[16];
        for (int i = 0; i < 16; ++i)
            sig[i] = i;
        for (int m = 0; m < 4; ++m) {
            int acc = 0;
            for (int n = 0; n < 12; ++n)
                acc += sig[n] * sig[n + m];
            expected.push_back(acc);
        }
    }
    for (AllocMode mode : kAllModes)
        EXPECT_EQ(runInts(src, mode), expected);

    // CB+dup should actually duplicate `signal`.
    CompileOptions opts;
    opts.mode = AllocMode::CBDup;
    auto compiled = compileSource(src, opts);
    bool signal_dup = false;
    for (DataObject *obj : compiled.alloc.duplicated)
        if (obj->name == "signal")
            signal_dup = true;
    EXPECT_TRUE(signal_dup);
}

TEST(Smoke, TwoDimensionalArrays)
{
    const char *src = R"(
        int M[3][3];
        void main() {
            for (int i = 0; i < 3; i++)
                for (int j = 0; j < 3; j++)
                    M[i][j] = i * 10 + j;
            int trace = 0;
            for (int i = 0; i < 3; i++)
                trace += M[i][i];
            out(trace);
        }
    )";
    for (AllocMode mode : kAllModes)
        EXPECT_EQ(runInts(src, mode), (std::vector<int32_t>{33}));
}

TEST(Smoke, CbBeatsSingleBankOnFir)
{
    const char *src = R"(
        int A[64];
        int B[64];
        void main() {
            for (int i = 0; i < 64; i++) { A[i] = i; B[i] = 64 - i; }
            int sum = 0;
            for (int i = 0; i < 64; i++)
                sum += A[i] * B[i];
            out(sum);
        }
    )";
    CompileOptions single, cb, ideal;
    single.mode = AllocMode::SingleBank;
    cb.mode = AllocMode::CB;
    ideal.mode = AllocMode::Ideal;

    auto r_single = runProgram(compileSource(src, single));
    auto r_cb = runProgram(compileSource(src, cb));
    auto r_ideal = runProgram(compileSource(src, ideal));

    EXPECT_EQ(r_single.output, r_cb.output);
    EXPECT_EQ(r_single.output, r_ideal.output);
    EXPECT_LT(r_cb.stats.cycles, r_single.stats.cycles);
    EXPECT_LE(r_ideal.stats.cycles, r_cb.stats.cycles);
}

} // namespace
} // namespace dsp

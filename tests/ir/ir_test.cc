/**
 * @file
 * IR structure tests: verifier diagnostics, printing, op accessors,
 * and the loop-analysis cross-check (structural depths recorded by
 * lowering must agree with CFG-derived natural-loop depths).
 */

#include <gtest/gtest.h>

#include "ir/clone.hh"
#include "ir/loop_info.hh"
#include "ir/module.hh"
#include "ir/printer.hh"
#include "ir/verifier.hh"
#include "lower/lower.hh"
#include "minic/parser.hh"
#include "minic/sema.hh"

namespace dsp
{
namespace
{

std::unique_ptr<Module>
lower(const std::string &src)
{
    auto prog = parseProgram(src);
    analyzeProgram(*prog);
    return lowerProgram(*prog);
}

TEST(Verifier, AcceptsLoweredPrograms)
{
    auto mod = lower(R"(
        int a[4];
        int f(int x) { return x * 2; }
        void main() {
            for (int i = 0; i < 4; i++)
                a[i] = f(i);
            out(a[3]);
        }
    )");
    EXPECT_TRUE(verifyModule(*mod).empty());
}

TEST(Verifier, CatchesMissingTerminator)
{
    Module mod;
    Function *fn = mod.newFunction("main", Type::Void);
    BasicBlock *bb = fn->newBlock("entry");
    Op op(Opcode::MovI);
    op.dst = fn->newVReg(RegClass::Int);
    op.imm = 1;
    bb->ops.push_back(op);
    auto errs = verifyModule(mod);
    ASSERT_FALSE(errs.empty());
    EXPECT_NE(errs[0].find("terminator"), std::string::npos);
}

TEST(Verifier, CatchesClassMismatch)
{
    Module mod;
    Function *fn = mod.newFunction("main", Type::Void);
    BasicBlock *bb = fn->newBlock("entry");
    Op add(Opcode::FAdd);
    add.dst = fn->newVReg(RegClass::Float);
    add.srcs = {fn->newVReg(RegClass::Int), fn->newVReg(RegClass::Int)};
    bb->ops.push_back(add);
    bb->ops.push_back(Op(Opcode::Ret));
    auto errs = verifyModule(mod);
    ASSERT_FALSE(errs.empty());
    EXPECT_NE(errs[0].find("class mismatch"), std::string::npos);
}

TEST(Verifier, CatchesBranchWithoutTarget)
{
    Module mod;
    Function *fn = mod.newFunction("main", Type::Void);
    BasicBlock *bb = fn->newBlock("entry");
    bb->ops.push_back(Op(Opcode::Jmp)); // no target
    auto errs = verifyModule(mod);
    ASSERT_FALSE(errs.empty());
}

TEST(Verifier, CatchesEmptyBlock)
{
    Module mod;
    Function *fn = mod.newFunction("main", Type::Void);
    fn->newBlock("entry");
    auto errs = verifyModule(mod);
    ASSERT_FALSE(errs.empty());
    EXPECT_NE(errs[0].find("empty"), std::string::npos);
}

TEST(Verifier, CatchesCallArityMismatch)
{
    Module mod;
    Function *callee = mod.newFunction("f", Type::Void);
    {
        Param p;
        p.name = "x";
        p.type = Type::Int;
        callee->params.push_back(p);
        BasicBlock *bb = callee->newBlock("entry");
        bb->ops.push_back(Op(Opcode::Ret));
    }
    Function *fn = mod.newFunction("main", Type::Void);
    BasicBlock *bb = fn->newBlock("entry");
    Op call(Opcode::Call);
    call.callee = callee;
    bb->ops.push_back(call); // zero args to a one-arg function
    bb->ops.push_back(Op(Opcode::Ret));
    auto errs = verifyFunction(*fn);
    ASSERT_FALSE(errs.empty());
    EXPECT_NE(errs[0].find("argument count"), std::string::npos);
}

TEST(OpAccessors, UsesIncludeMacAccumulator)
{
    Op mac(Opcode::Mac);
    mac.dst = VReg(RegClass::Int, 40);
    mac.srcs = {VReg(RegClass::Int, 41), VReg(RegClass::Int, 42)};
    auto uses = mac.uses();
    EXPECT_EQ(uses.size(), 3u);
    EXPECT_TRUE(std::find(uses.begin(), uses.end(), mac.dst) !=
                uses.end());
    EXPECT_EQ(mac.def(), mac.dst);
}

TEST(OpAccessors, StoresDefineNothing)
{
    Op st(Opcode::St);
    st.srcs = {VReg(RegClass::Int, 40)};
    EXPECT_FALSE(st.def().valid());
}

TEST(OpAccessors, MemIndexIsAUse)
{
    Module mod;
    DataObject *obj = mod.newGlobal("a", Type::Int, 8);
    Op ld(Opcode::Ld);
    ld.dst = VReg(RegClass::Int, 40);
    ld.mem.object = obj;
    ld.mem.index = VReg(RegClass::Int, 41);
    auto uses = ld.uses();
    ASSERT_EQ(uses.size(), 1u);
    EXPECT_EQ(uses[0].id, 41);
}

TEST(Printer, RendersOps)
{
    Module mod;
    DataObject *obj = mod.newGlobal("buf", Type::Int, 8);
    Op ld(Opcode::Ld);
    ld.dst = VReg(RegClass::Int, 40);
    ld.mem.object = obj;
    ld.mem.offset = 3;
    EXPECT_EQ(ld.str(), "ld iv40, [buf + 3]");

    Op movi(Opcode::MovI);
    movi.dst = VReg(RegClass::Int, 33);
    movi.imm = -7;
    EXPECT_EQ(movi.str(), "movi iv33, #-7");
}

TEST(LoopInfo, AgreesWithLoweringDepths)
{
    auto mod = lower(R"(
        int a[4];
        void main() {
            for (int i = 0; i < 3; i++) {
                a[i] = i;
                for (int j = 0; j < 3; j++) {
                    a[j] += j;
                    while (a[j] > 100) a[j] -= 1;
                }
            }
            out(a[0]);
        }
    )");
    for (const auto &fn : mod->functions) {
        LoopInfo info(*fn);
        for (const auto &bb : fn->blocks) {
            EXPECT_EQ(info.depth(bb.get()), bb->loopDepth)
                << fn->name << "/" << bb->label;
        }
    }
}

TEST(LoopInfo, CountsLoops)
{
    auto mod = lower(R"(
        void main() {
            int s = 0;
            for (int i = 0; i < 3; i++) s += i;
            for (int j = 0; j < 3; j++) s += j;
            out(s);
        }
    )");
    LoopInfo info(*mod->findFunction("main"));
    EXPECT_EQ(info.loopCount(), 2);
}

TEST(NaturalLoops, FindsPreheaders)
{
    auto mod = lower(R"(
        void main() {
            int s = 0;
            for (int i = 0; i < 8; i++) s += i;
            out(s);
        }
    )");
    auto loops = findNaturalLoops(*mod->findFunction("main"));
    ASSERT_EQ(loops.size(), 1u);
    EXPECT_NE(loops[0].preheader, nullptr);
    EXPECT_GE(loops[0].body.size(), 2u);
    EXPECT_TRUE(loops[0].body.count(loops[0].header));
}

TEST(Lowering, AliasAnalysisBindsParams)
{
    auto mod = lower(R"(
        int a[4];
        int b[4];
        int pick(int v[]) { return v[0]; }
        void main() { out(pick(a) + pick(b)); }
    )");
    Function *pick = mod->findFunction("pick");
    ASSERT_NE(pick, nullptr);
    ASSERT_FALSE(pick->params.empty());
    DataObject *param = pick->params[0].object;
    ASSERT_NE(param, nullptr);
    EXPECT_EQ(param->mayBind.size(), 2u);
}

TEST(Lowering, TransitiveParamBinding)
{
    auto mod = lower(R"(
        int a[4];
        int inner(int v[]) { return v[1]; }
        int outer(int w[]) { return inner(w); }
        void main() { out(outer(a)); }
    )");
    DataObject *inner_param =
        mod->findFunction("inner")->params[0].object;
    ASSERT_EQ(inner_param->mayBind.size(), 1u);
    EXPECT_EQ(inner_param->mayBind[0]->name, "a");
}

TEST(Lowering, GlobalInitializerWords)
{
    auto mod = lower("int a[4] = {1, 2}; void main() { out(a[0]); }");
    DataObject *a = mod->findGlobal("a");
    ASSERT_NE(a, nullptr);
    ASSERT_EQ(a->init.size(), 4u);
    EXPECT_EQ(a->init[0], 1u);
    EXPECT_EQ(a->init[1], 2u);
    EXPECT_EQ(a->init[2], 0u); // zero-filled tail
}

TEST(Lowering, UnreachableBlocksPruned)
{
    auto mod = lower(R"(
        void main() {
            out(1);
            return;
            out(2);
        }
    )");
    // Everything after the return must be gone.
    Function *fn = mod->findFunction("main");
    int out_count = 0;
    for (const auto &bb : fn->blocks)
        for (const Op &op : bb->ops)
            if (op.opcode == Opcode::Out)
                ++out_count;
    EXPECT_EQ(out_count, 1);
}

TEST(FunctionSnapshot, RestoreUndoesArbitraryMutation)
{
    auto mod = lower(R"(
        int a[8];
        void main() {
            int s = 0;
            for (int i = 0; i < 8; i++) s += a[i];
            out(s);
        }
    )");
    Function *fn = mod->findFunction("main");
    std::string before = printFunction(*fn);
    int vregsBefore = fn->nextVRegId;

    FunctionSnapshot snapshot(*fn);

    // Mangle the body the way a buggy pass might: new blocks, new
    // vregs, ops deleted, a stray unterminated block.
    fn->entry()->ops.clear();
    BasicBlock *junk = fn->newBlock("junk");
    Op add(Opcode::Add);
    add.dst = fn->newVReg(RegClass::Int);
    junk->ops.push_back(add);
    EXPECT_FALSE(verifyFunction(*fn).empty());

    snapshot.restore(*fn);
    EXPECT_EQ(printFunction(*fn), before);
    EXPECT_EQ(fn->nextVRegId, vregsBefore);
    EXPECT_TRUE(verifyFunction(*fn).empty());

    // The snapshot is not consumed: restore works repeatedly, and the
    // restored branch targets point into the restored body (the
    // verifier's CFG walk would catch stale pointers).
    fn->blocks.clear();
    snapshot.restore(*fn);
    EXPECT_EQ(printFunction(*fn), before);
    for (const auto &bb : fn->blocks)
        for (const Op &op : bb->ops)
            if (op.target) {
                bool found = false;
                for (const auto &other : fn->blocks)
                    found |= other.get() == op.target;
                EXPECT_TRUE(found);
            }
}

} // namespace
} // namespace dsp

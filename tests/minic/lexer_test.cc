/**
 * @file
 * Lexer unit tests: token kinds, literal values, comments, and
 * malformed-input diagnostics.
 */

#include <limits>

#include <gtest/gtest.h>

#include "minic/lexer.hh"
#include "minic/parser.hh"

namespace dsp
{
namespace
{

std::vector<Tok>
kinds(const std::string &src)
{
    std::vector<Tok> out;
    for (const Token &t : lexSource(src))
        out.push_back(t.kind);
    return out;
}

TEST(Lexer, EmptyInput)
{
    EXPECT_EQ(kinds(""), (std::vector<Tok>{Tok::End}));
    EXPECT_EQ(kinds("   \n\t  "), (std::vector<Tok>{Tok::End}));
}

TEST(Lexer, Keywords)
{
    EXPECT_EQ(kinds("int float void if else while for do return break "
                    "continue"),
              (std::vector<Tok>{Tok::KwInt, Tok::KwFloat, Tok::KwVoid,
                                Tok::KwIf, Tok::KwElse, Tok::KwWhile,
                                Tok::KwFor, Tok::KwDo, Tok::KwReturn,
                                Tok::KwBreak, Tok::KwContinue,
                                Tok::End}));
}

TEST(Lexer, IdentifiersAreNotKeywords)
{
    auto toks = lexSource("integer whilex _if do1");
    ASSERT_EQ(toks.size(), 5u);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(toks[i].kind, Tok::Ident);
    EXPECT_EQ(toks[0].text, "integer");
    EXPECT_EQ(toks[2].text, "_if");
}

TEST(Lexer, IntegerLiterals)
{
    auto toks = lexSource("0 7 12345");
    EXPECT_EQ(toks[0].intValue, 0);
    EXPECT_EQ(toks[1].intValue, 7);
    EXPECT_EQ(toks[2].intValue, 12345);
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(toks[i].kind, Tok::IntLit);
}

TEST(Lexer, FloatLiterals)
{
    auto toks = lexSource("1.5 0.25 3. 2e3 1.5e-2 7f");
    EXPECT_EQ(toks[0].kind, Tok::FloatLit);
    EXPECT_FLOAT_EQ(toks[0].floatValue, 1.5f);
    EXPECT_FLOAT_EQ(toks[1].floatValue, 0.25f);
    EXPECT_FLOAT_EQ(toks[2].floatValue, 3.0f);
    EXPECT_FLOAT_EQ(toks[3].floatValue, 2000.0f);
    EXPECT_FLOAT_EQ(toks[4].floatValue, 0.015f);
    EXPECT_EQ(toks[5].kind, Tok::FloatLit);
    EXPECT_FLOAT_EQ(toks[5].floatValue, 7.0f);
}

TEST(Lexer, LeadingDotFloat)
{
    auto toks = lexSource(".5");
    EXPECT_EQ(toks[0].kind, Tok::FloatLit);
    EXPECT_FLOAT_EQ(toks[0].floatValue, 0.5f);
}

TEST(Lexer, OperatorsSingleAndDouble)
{
    EXPECT_EQ(kinds("+ - * / % & | ^ ~ ! < > ="),
              (std::vector<Tok>{Tok::Plus, Tok::Minus, Tok::Star,
                                Tok::Slash, Tok::Percent, Tok::Amp,
                                Tok::Pipe, Tok::Caret, Tok::Tilde,
                                Tok::Bang, Tok::LT, Tok::GT, Tok::Assign,
                                Tok::End}));
    EXPECT_EQ(kinds("== != <= >= << >> && || ++ -- += -= *="),
              (std::vector<Tok>{Tok::EQ, Tok::NE, Tok::LE, Tok::GE,
                                Tok::Shl, Tok::Shr, Tok::AmpAmp,
                                Tok::PipePipe, Tok::PlusPlus,
                                Tok::MinusMinus, Tok::PlusAssign,
                                Tok::MinusAssign, Tok::StarAssign,
                                Tok::End}));
}

TEST(Lexer, MaximalMunch)
{
    // "a+++b" lexes as a ++ + b (C's maximal munch).
    EXPECT_EQ(kinds("a+++b"),
              (std::vector<Tok>{Tok::Ident, Tok::PlusPlus, Tok::Plus,
                                Tok::Ident, Tok::End}));
}

TEST(Lexer, LineComments)
{
    EXPECT_EQ(kinds("1 // comment with * and /* tokens\n2"),
              (std::vector<Tok>{Tok::IntLit, Tok::IntLit, Tok::End}));
}

TEST(Lexer, BlockComments)
{
    EXPECT_EQ(kinds("1 /* multi\nline\ncomment */ 2"),
              (std::vector<Tok>{Tok::IntLit, Tok::IntLit, Tok::End}));
}

TEST(Lexer, UnterminatedBlockCommentFails)
{
    EXPECT_THROW(lexSource("1 /* never closed"), UserError);
}

TEST(Lexer, UnexpectedCharacterFails)
{
    EXPECT_THROW(lexSource("int $x;"), UserError);
    EXPECT_THROW(lexSource("a @ b"), UserError);
}

TEST(Lexer, SourceLocations)
{
    auto toks = lexSource("a\n  b");
    EXPECT_EQ(toks[0].loc.line, 1);
    EXPECT_EQ(toks[0].loc.column, 1);
    EXPECT_EQ(toks[1].loc.line, 2);
    EXPECT_EQ(toks[1].loc.column, 3);
}

TEST(Lexer, MalformedExponentFails)
{
    EXPECT_THROW(lexSource("1e"), UserError);
    EXPECT_THROW(lexSource("1e+"), UserError);
}

TEST(Lexer, Punctuation)
{
    EXPECT_EQ(kinds("( ) { } [ ] , ;"),
              (std::vector<Tok>{Tok::LParen, Tok::RParen, Tok::LBrace,
                                Tok::RBrace, Tok::LBracket,
                                Tok::RBracket, Tok::Comma, Tok::Semi,
                                Tok::End}));
}

TEST(Lexer, IntLiteralOverflowIsDiagnosed)
{
    // The historical bug: strtol saturated silently and the LONG_MAX
    // value truncated through static_cast<int> downstream. Both entry
    // points must complain instead.
    EXPECT_THROW(lexSource("99999999999"), UserError);
    EXPECT_THROW(lexSource("2147483648"), UserError); // INT32_MAX + 1

    DiagnosticEngine diags;
    auto toks = lexSource("2147483648", diags);
    EXPECT_EQ(diags.errorCount(), 1);
    // The token is still produced (clamped) so parsing can continue.
    ASSERT_GE(toks.size(), 1u);
    EXPECT_EQ(toks[0].kind, Tok::IntLit);
    EXPECT_EQ(toks[0].intValue, 2147483647);
    // The diagnostic carries the literal's location.
    EXPECT_EQ(diags.diagnostics()[0].loc.line, 1);
}

TEST(Lexer, IntLiteralBoundaryIsAccepted)
{
    DiagnosticEngine diags;
    auto toks = lexSource("2147483647 0", diags);
    EXPECT_EQ(diags.errorCount(), 0);
    EXPECT_EQ(toks[0].intValue, 2147483647);
}

TEST(Lexer, FloatLiteralOverflowIsDiagnosed)
{
    // binary32 tops out near 3.4e38; 1e39 overflows to HUGE_VALF.
    EXPECT_THROW(lexSource("1e39"), UserError);

    DiagnosticEngine diags;
    auto toks = lexSource("1e39", diags);
    EXPECT_EQ(diags.errorCount(), 1);
    ASSERT_GE(toks.size(), 1u);
    EXPECT_EQ(toks[0].kind, Tok::FloatLit);
    EXPECT_FLOAT_EQ(toks[0].floatValue,
                    std::numeric_limits<float>::max());
}

TEST(Lexer, FloatBoundaryAndUnderflowAreAccepted)
{
    DiagnosticEngine diags;
    // In range for binary32; an underflowing literal denormalizes or
    // rounds to zero, which is IEEE behavior and not an error.
    auto toks = lexSource("3.4e38 1e-50", diags);
    EXPECT_EQ(diags.errorCount(), 0);
    EXPECT_EQ(toks[0].kind, Tok::FloatLit);
    EXPECT_GT(toks[0].floatValue, 3.3e38f);
    EXPECT_EQ(toks[1].kind, Tok::FloatLit);
    EXPECT_LT(toks[1].floatValue, 1e-40f);
}

TEST(Lexer, OutOfRangeLiteralsSurfaceThroughTheParser)
{
    // End-to-end through parseProgram's recovery path: the range
    // error is reported with every other diagnostic instead of
    // compiling a saturated array dimension.
    DiagnosticEngine diags;
    auto prog = parseProgram(
        "int a[99999999999];\nvoid main() { out(1e39); }", diags);
    ASSERT_NE(prog, nullptr);
    EXPECT_EQ(diags.errorCount(), 2);
}

} // namespace
} // namespace dsp

/**
 * @file
 * Parser unit tests: declaration forms, statement forms, expression
 * precedence/associativity, and syntax-error diagnostics.
 */

#include <gtest/gtest.h>

#include "minic/parser.hh"

namespace dsp
{
namespace
{

std::unique_ptr<Program>
parse(const std::string &src)
{
    return parseProgram(src);
}

TEST(Parser, GlobalScalarsAndArrays)
{
    auto p = parse("int x; float y = 1.5; int a[4]; int m[3][5];");
    ASSERT_EQ(p->globals.size(), 4u);
    EXPECT_EQ(p->globals[0]->name, "x");
    EXPECT_TRUE(p->globals[0]->dims.empty());
    EXPECT_EQ(p->globals[1]->elem, Type::Float);
    ASSERT_EQ(p->globals[1]->initExprs.size(), 1u);
    EXPECT_EQ(p->globals[2]->dims, (std::vector<int>{4}));
    EXPECT_EQ(p->globals[3]->dims, (std::vector<int>{3, 5}));
}

TEST(Parser, GlobalArrayInitializer)
{
    auto p = parse("int a[4] = {1, 2, -3};");
    EXPECT_EQ(p->globals[0]->initExprs.size(), 3u);
}

TEST(Parser, FunctionForms)
{
    auto p = parse(R"(
        void f() {}
        int g(int a, float b) { return a; }
        float h(float v[], int n) { return v[n]; }
        void k(void) {}
    )");
    ASSERT_EQ(p->functions.size(), 4u);
    EXPECT_TRUE(p->functions[0]->params.empty());
    ASSERT_EQ(p->functions[1]->params.size(), 2u);
    EXPECT_EQ(p->functions[1]->params[1].type, Type::Float);
    EXPECT_TRUE(p->functions[2]->params[0].isArray);
    EXPECT_FALSE(p->functions[2]->params[1].isArray);
    EXPECT_TRUE(p->functions[3]->params.empty());
}

TEST(Parser, StatementKinds)
{
    auto p = parse(R"(
        void f() {
            int x = 1;
            if (x) x = 2; else x = 3;
            while (x) x--;
            do x++; while (x < 10);
            for (int i = 0; i < 4; i++) { break; }
            for (;;) { continue; }
            return;
        }
    )");
    auto &body = p->functions[0]->body->stmts;
    ASSERT_EQ(body.size(), 7u);
    EXPECT_EQ(body[0]->kind, StmtKind::VarDecl);
    EXPECT_EQ(body[1]->kind, StmtKind::If);
    EXPECT_EQ(body[2]->kind, StmtKind::While);
    EXPECT_EQ(body[3]->kind, StmtKind::DoWhile);
    EXPECT_EQ(body[4]->kind, StmtKind::For);
    EXPECT_EQ(body[5]->kind, StmtKind::For);
    EXPECT_EQ(body[6]->kind, StmtKind::Return);
}

const BinaryExpr &
asBinary(const Expr &e)
{
    EXPECT_EQ(e.kind, ExprKind::Binary);
    return static_cast<const BinaryExpr &>(e);
}

const Expr &
onlyExpr(const Program &p)
{
    const auto &stmts = p.functions[0]->body->stmts;
    EXPECT_EQ(stmts[0]->kind, StmtKind::ExprStmt);
    return *static_cast<const ExprStmt &>(*stmts[0]).expr;
}

TEST(Parser, MulBindsTighterThanAdd)
{
    auto p = parse("void f() { a + b * c; }");
    const auto &add = asBinary(onlyExpr(*p));
    EXPECT_EQ(add.op, BinOp::Add);
    const auto &mul = asBinary(*add.rhs);
    EXPECT_EQ(mul.op, BinOp::Mul);
}

TEST(Parser, ShiftVsRelationalPrecedence)
{
    // a << b < c parses as (a << b) < c (C precedence).
    auto p = parse("void f() { a << b < c; }");
    const auto &rel = asBinary(onlyExpr(*p));
    EXPECT_EQ(rel.op, BinOp::LT);
    EXPECT_EQ(asBinary(*rel.lhs).op, BinOp::Shl);
}

TEST(Parser, BitwisePrecedenceChain)
{
    // a | b ^ c & d == e
    auto p = parse("void f() { a | b ^ c & d == e; }");
    const auto &orx = asBinary(onlyExpr(*p));
    EXPECT_EQ(orx.op, BinOp::BitOr);
    const auto &xorx = asBinary(*orx.rhs);
    EXPECT_EQ(xorx.op, BinOp::BitXor);
    const auto &andx = asBinary(*xorx.rhs);
    EXPECT_EQ(andx.op, BinOp::BitAnd);
    EXPECT_EQ(asBinary(*andx.rhs).op, BinOp::EQ);
}

TEST(Parser, AssignmentIsRightAssociative)
{
    auto p = parse("void f() { a = b = c; }");
    const Expr &e = onlyExpr(*p);
    ASSERT_EQ(e.kind, ExprKind::Assign);
    const auto &outer = static_cast<const AssignExpr &>(e);
    EXPECT_EQ(outer.value->kind, ExprKind::Assign);
}

TEST(Parser, SubtractionIsLeftAssociative)
{
    auto p = parse("void f() { a - b - c; }");
    const auto &outer = asBinary(onlyExpr(*p));
    EXPECT_EQ(outer.op, BinOp::Sub);
    EXPECT_EQ(asBinary(*outer.lhs).op, BinOp::Sub);
    EXPECT_EQ(outer.rhs->kind, ExprKind::VarRef);
}

TEST(Parser, LogicalOperatorsNest)
{
    auto p = parse("void f() { a && b || c && d; }");
    const auto &orx = asBinary(onlyExpr(*p));
    EXPECT_EQ(orx.op, BinOp::LogicalOr);
    EXPECT_EQ(asBinary(*orx.lhs).op, BinOp::LogicalAnd);
    EXPECT_EQ(asBinary(*orx.rhs).op, BinOp::LogicalAnd);
}

TEST(Parser, CastExpressions)
{
    auto p = parse("void f() { (float)x; (int)(y + z); }");
    const auto &stmts = p->functions[0]->body->stmts;
    const Expr &c0 = *static_cast<const ExprStmt &>(*stmts[0]).expr;
    EXPECT_EQ(c0.kind, ExprKind::Cast);
    EXPECT_EQ(c0.type, Type::Float);
}

TEST(Parser, CallsAndIndexing)
{
    auto p = parse("void f() { g(1, x, h()); a[i][j]; }");
    const auto &stmts = p->functions[0]->body->stmts;
    const Expr &call = *static_cast<const ExprStmt &>(*stmts[0]).expr;
    ASSERT_EQ(call.kind, ExprKind::Call);
    EXPECT_EQ(static_cast<const CallExpr &>(call).args.size(), 3u);
    const Expr &idx = *static_cast<const ExprStmt &>(*stmts[1]).expr;
    ASSERT_EQ(idx.kind, ExprKind::ArrayRef);
    EXPECT_EQ(static_cast<const ArrayRefExpr &>(idx).indices.size(), 2u);
}

TEST(Parser, UnaryChains)
{
    auto p = parse("void f() { - - x; !~y; }");
    const Expr &e = onlyExpr(*p);
    ASSERT_EQ(e.kind, ExprKind::Unary);
    EXPECT_EQ(static_cast<const UnaryExpr &>(e).operand->kind,
              ExprKind::Unary);
}

TEST(Parser, SyntaxErrors)
{
    EXPECT_THROW(parse("void f() { int; }"), UserError);
    EXPECT_THROW(parse("void f() { x = ; }"), UserError);
    EXPECT_THROW(parse("void f() { if x) y; }"), UserError);
    EXPECT_THROW(parse("void f() {"), UserError);
    EXPECT_THROW(parse("int a[];"), UserError);
    EXPECT_THROW(parse("int a[0];"), UserError);
    EXPECT_THROW(parse("void void() {}"), UserError);
    EXPECT_THROW(parse("void f(void x) {}"), UserError);
}

TEST(Parser, RecoveryReportsEveryError)
{
    // Three statement-level errors in one program: recovery must
    // synchronize past each and report all three with their own
    // source locations, while still parsing the valid declarations
    // around them.
    const char *src = R"(
        int g;
        void f() {
            int a = ;
            a = 1;
            a = * 2;
            out(;
            a = 3;
        }
    )";
    DiagnosticEngine diags;
    auto p = parseProgram(src, diags);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(diags.errorCount(), 3) << diags.summary();
    EXPECT_FALSE(diags.hitErrorLimit());
    // The surviving AST still carries the healthy parts.
    ASSERT_EQ(p->globals.size(), 1u);
    ASSERT_EQ(p->functions.size(), 1u);

    // Every diagnostic has a distinct location, in source order.
    const auto &ds = diags.diagnostics();
    ASSERT_EQ(ds.size(), 3u);
    EXPECT_LT(ds[0].loc.line, ds[1].loc.line);
    EXPECT_LT(ds[1].loc.line, ds[2].loc.line);
}

TEST(Parser, RecoveryResyncsAcrossFunctions)
{
    // An error inside one function must not swallow the next
    // function's definition.
    const char *src = R"(
        void broken() { if ( }
        void fine() { out(1); }
    )";
    DiagnosticEngine diags;
    auto p = parseProgram(src, diags);
    EXPECT_GE(diags.errorCount(), 1);
    ASSERT_GE(p->functions.size(), 1u);
    EXPECT_EQ(p->functions.back()->name, "fine");
}

TEST(Parser, ThrowingOverloadCarriesEveryDiagnostic)
{
    try {
        parseProgram("void f() { int a = ; int b = ; }", 20);
        FAIL() << "expected UserError";
    } catch (const UserError &e) {
        std::string msg = e.what();
        int errors = 0;
        for (std::size_t pos = 0;
             (pos = msg.find("error:", pos)) != std::string::npos;
             ++pos)
            ++errors;
        EXPECT_EQ(errors, 2) << msg;
    }
}

TEST(Parser, ErrorCapStopsTheParseEarly)
{
    // Ten bad statements against a cap of three: the parse stops at
    // the cap instead of grinding on, and says so.
    std::string src = "void f() {\n";
    for (int i = 0; i < 10; ++i)
        src += "    int v" + std::to_string(i) + " = ;\n";
    src += "}\n";

    DiagnosticEngine diags(/*max_errors=*/3);
    auto p = parseProgram(src, diags);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(diags.errorCount(), 3);
    EXPECT_TRUE(diags.hitErrorLimit());

    try {
        parseProgram(src, 3);
        FAIL() << "expected UserError";
    } catch (const UserError &e) {
        EXPECT_NE(std::string(e.what()).find("too many errors"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Parser, DanglingElseBindsToInner)
{
    auto p = parse("void f() { if (a) if (b) x = 1; else x = 2; }");
    const auto &outer = static_cast<const IfStmt &>(
        *p->functions[0]->body->stmts[0]);
    EXPECT_EQ(outer.elseStmt, nullptr);
    const auto &inner =
        static_cast<const IfStmt &>(*outer.thenStmt);
    EXPECT_NE(inner.elseStmt, nullptr);
}

} // namespace
} // namespace dsp

/**
 * @file
 * Semantic-analysis unit tests: name resolution, scoping, type rules,
 * implicit conversions, builtin signatures, and diagnostics.
 */

#include <cstring>

#include <gtest/gtest.h>

#include "minic/parser.hh"
#include "minic/sema.hh"

namespace dsp
{
namespace
{

std::unique_ptr<Program>
analyze(const std::string &src)
{
    auto p = parseProgram(src);
    analyzeProgram(*p);
    return p;
}

void
expectError(const std::string &src)
{
    auto p = parseProgram(src);
    EXPECT_THROW(analyzeProgram(*p), UserError) << src;
}

TEST(Sema, RequiresMain)
{
    expectError("void notmain() {}");
    EXPECT_NO_THROW(analyze("void main() {}"));
}

TEST(Sema, UndeclaredVariable)
{
    expectError("void main() { x = 1; }");
    expectError("void main() { int y = x; }");
}

TEST(Sema, UseBeforeDeclarationInBlock)
{
    // C scoping: initializer cannot reference the variable being
    // declared (no prior declaration exists).
    expectError("void main() { int x = x; }");
}

TEST(Sema, BlockScoping)
{
    EXPECT_NO_THROW(analyze(R"(
        void main() {
            int x = 1;
            { int x = 2; x = 3; }
            x = 4;
        }
    )"));
    expectError(R"(
        void main() {
            { int x = 1; }
            x = 2;
        }
    )");
}

TEST(Sema, RedefinitionInSameScope)
{
    expectError("void main() { int x; int x; }");
    expectError("int g; int g; void main() {}");
    expectError("void f() {} void f() {} void main() {}");
}

TEST(Sema, ForLoopVariableScope)
{
    expectError(R"(
        void main() {
            for (int i = 0; i < 4; i++) {}
            i = 1;
        }
    )");
}

TEST(Sema, BreakContinueOnlyInLoops)
{
    expectError("void main() { break; }");
    expectError("void main() { if (1) continue; }");
    EXPECT_NO_THROW(analyze(
        "void main() { while (1) { if (1) break; continue; } }"));
}

TEST(Sema, ReturnTypeRules)
{
    expectError("void main() { return 1; }");
    expectError("int f() { return; } void main() {}");
    EXPECT_NO_THROW(analyze("int f() { return 1; } void main() {}"));
    // Implicit conversion on return.
    auto p = analyze("float f() { return 1; } void main() {}");
    (void)p;
}

TEST(Sema, ImplicitConversionInsertsCasts)
{
    auto p = analyze("void main() { float f = 1; int i = 2.5; }");
    auto &stmts = p->functions[0]->body->stmts;
    const auto &d0 = static_cast<const VarDeclStmt &>(*stmts[0]);
    EXPECT_EQ(d0.init->kind, ExprKind::Cast);
    EXPECT_EQ(d0.init->type, Type::Float);
    const auto &d1 = static_cast<const VarDeclStmt &>(*stmts[1]);
    EXPECT_EQ(d1.init->kind, ExprKind::Cast);
    EXPECT_EQ(d1.init->type, Type::Int);
}

TEST(Sema, MixedArithmeticPromotesToFloat)
{
    auto p = analyze("void main() { float f; f = f + 1; }");
    (void)p;
    expectError("void main() { float f; int x = f % 2; }");
    expectError("void main() { float f; int x = f << 1; }");
    expectError("void main() { float f; int x = f & 1; }");
}

TEST(Sema, ComparisonsYieldInt)
{
    auto p = analyze("void main() { float f; int b = f < 1.0; }");
    auto &stmts = p->functions[0]->body->stmts;
    const auto &d = static_cast<const VarDeclStmt &>(*stmts[1]);
    EXPECT_EQ(d.init->type, Type::Int);
}

TEST(Sema, LValueRules)
{
    expectError("void main() { 1 = 2; }");
    expectError("void main() { int x; (x + 1) = 2; }");
    expectError("void main() { int x; x + 1 += 2; }");
    expectError("void main() { 5++; }");
    EXPECT_NO_THROW(analyze("int a[4]; void main() { a[1] = 2; "
                            "a[0]++; a[2] += 3; }"));
}

TEST(Sema, ArrayIndexingRules)
{
    expectError("int a[4]; void main() { int x = a[1][2]; }");
    expectError("int m[2][2]; void main() { int x = m[0]; }");
    expectError("void main() { int x; int y = x[0]; }");
    // Float index gets an implicit conversion.
    EXPECT_NO_THROW(
        analyze("int a[4]; void main() { float f; a[f] = 1; }"));
}

TEST(Sema, CallRules)
{
    expectError("void main() { g(); }");
    expectError("int f(int a) { return a; } void main() { f(); }");
    expectError("int f(int a) { return a; } void main() { f(1, 2); }");
    expectError("void f() {} void main() { int x = f(); }");
}

TEST(Sema, ArrayParameterRules)
{
    const char *ok = R"(
        int a[4];
        int sum(int v[], int n) { return v[0] + n; }
        void main() { sum(a, 4); }
    )";
    EXPECT_NO_THROW(analyze(ok));
    // Scalar passed where array expected.
    expectError(R"(
        int sum(int v[]) { return v[0]; }
        void main() { int x; sum(x); }
    )");
    // Array passed where scalar expected.
    expectError(R"(
        int a[4];
        int f(int x) { return x; }
        void main() { f(a); }
    )");
    // Element type mismatch.
    expectError(R"(
        float a[4];
        int f(int v[]) { return v[0]; }
        void main() { f(a); }
    )");
    // 2-D arrays cannot be parameters.
    expectError(R"(
        int m[2][2];
        int f(int v[]) { return v[0]; }
        void main() { f(m); }
    )");
}

TEST(Sema, BuiltinSignatures)
{
    EXPECT_NO_THROW(analyze(
        "void main() { int x = in(); float f = inf(); out(x); "
        "outf(f); }"));
    expectError("void main() { in(1); }");
    expectError("void main() { out(); }");
    expectError("void main() { out(1, 2); }");
    // Implicit conversion of out()'s argument.
    EXPECT_NO_THROW(analyze("void main() { out(1.5); outf(2); }"));
}

TEST(Sema, GlobalInitializersMustBeConstant)
{
    EXPECT_NO_THROW(analyze("int x = 3 + 4 * 2; void main() {}"));
    EXPECT_NO_THROW(analyze("float f = -1.5; void main() {}"));
    expectError("int y; int x = y; void main() {}");
    expectError("int a[2] = {1, 2, 3}; void main() {}");
}

TEST(Sema, ConstantFolding)
{
    auto p = parseProgram("int x = 2 + 3; void main() {}");
    analyzeProgram(*p);
    EXPECT_EQ(foldConstantWord(*p->globals[0]->initExprs[0], Type::Int),
              5u);
    auto p2 = parseProgram("float x = 1.0 / 4.0; void main() {}");
    analyzeProgram(*p2);
    float f;
    uint32_t w =
        foldConstantWord(*p2->globals[0]->initExprs[0], Type::Float);
    std::memcpy(&f, &w, sizeof(f));
    EXPECT_FLOAT_EQ(f, 0.25f);
}

TEST(Sema, MainMustHaveNoParams)
{
    // Enforced at machine lowering; sema accepts, the driver rejects.
    EXPECT_NO_THROW(analyze("void main(int x) { out(x); }"));
}

TEST(Sema, VoidMisuse)
{
    expectError("void f() {} void main() { int x = 1 + f(); }");
    expectError("void f() {} void main() { if (f()) {} }");
}

} // namespace
} // namespace dsp

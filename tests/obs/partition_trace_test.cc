/**
 * @file
 * Partition-decision-trace tests: the greedy descent must expose its
 * move sequence exactly as the paper's Figure 5 walks it, and the
 * explainable forms (explainPartition text, partitionTraceJson,
 * dspcc --explain-partition, the "partition.move" trace instants)
 * must all agree with it.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "codegen/partition.hh"
#include "driver/compiler.hh"
#include "ir/module.hh"
#include "support/json_checker.hh"
#include "support/telemetry.hh"

namespace dsp
{
namespace
{

using testing::JsonChecker;

/** The exact graph of the paper's Figure 4(b): (A,D) weight 2 from a
 *  loop pairing, every other pair weight 1. */
struct Fig4Graph
{
    Module mod;
    DataObject *A, *B, *C, *D;
    InterferenceGraph graph;

    Fig4Graph()
    {
        A = mod.newGlobal("A", Type::Int, 8);
        B = mod.newGlobal("B", Type::Int, 8);
        C = mod.newGlobal("C", Type::Int, 8);
        D = mod.newGlobal("D", Type::Int, 8);
        graph.addEdgeWeight(A, B, 1, false);
        graph.addEdgeWeight(A, C, 1, false);
        graph.addEdgeWeight(A, D, 2, false);
        graph.addEdgeWeight(B, C, 1, false);
        graph.addEdgeWeight(B, D, 1, false);
        graph.addEdgeWeight(C, D, 1, false);
    }
};

TEST(PartitionTrace, Figure5GoldenMoveSequence)
{
    Fig4Graph f;
    PartitionResult result = partitionGreedy(f.graph);

    // The paper's Figure 5 descent: initial cost 7 (all uncut), move
    // D (gain 4, cost 3), move C (gain 1, cost 2), stop.
    EXPECT_EQ(result.initialCost, 7);
    EXPECT_EQ(result.finalCost, 2);
    ASSERT_EQ(result.moves.size(), 2u);
    EXPECT_EQ(result.moves[0].node, f.D);
    EXPECT_EQ(result.moves[0].gain, 4);
    EXPECT_EQ(result.moves[0].costAfter, 3);
    EXPECT_EQ(result.moves[1].node, f.C);
    EXPECT_EQ(result.moves[1].gain, 1);
    EXPECT_EQ(result.moves[1].costAfter, 2);

    // Moves are self-consistent with the cost trajectory.
    long running = result.initialCost;
    for (const PartitionMove &move : result.moves) {
        EXPECT_EQ(move.costAfter, running - move.gain);
        running = move.costAfter;
    }
    EXPECT_EQ(running, result.finalCost);

    EXPECT_EQ(result.bankOf.at(f.A), Bank::X);
    EXPECT_EQ(result.bankOf.at(f.B), Bank::X);
    EXPECT_EQ(result.bankOf.at(f.C), Bank::Y);
    EXPECT_EQ(result.bankOf.at(f.D), Bank::Y);
}

TEST(PartitionTrace, AlternatingBaselineRecordsNoMoves)
{
    Fig4Graph f;
    EXPECT_TRUE(partitionAlternating(f.graph).moves.empty());
}

TEST(PartitionTrace, ExplainTextCarriesTheGoldenDescent)
{
    Fig4Graph f;
    AllocReport report;
    report.graph = f.graph;
    report.partition = partitionGreedy(f.graph);

    std::string text = explainPartition(report);
    // Golden lines (exact formatting pinned: this is user-facing
    // output reproducing the paper's Figure 5).
    EXPECT_NE(text.find("A -- D  weight 2"), std::string::npos) << text;
    EXPECT_NE(text.find("greedy descent (initial cost 7"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("move D -> Y  (gain 4, cost 7 -> 3)"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("move C -> Y  (gain 1, cost 3 -> 2)"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("final cost 2"), std::string::npos) << text;
    EXPECT_NE(text.find("A -> X"), std::string::npos) << text;
    EXPECT_NE(text.find("D -> Y"), std::string::npos) << text;
}

TEST(PartitionTrace, JsonFormStrictParsesAndMatches)
{
    Fig4Graph f;
    AllocReport report;
    report.graph = f.graph;
    report.partition = partitionGreedy(f.graph);

    std::string text = partitionTraceJson(report);
    JsonChecker checker;
    ASSERT_TRUE(checker.parse(text)) << checker.error << "\n" << text;
    EXPECT_TRUE(checker.sawString("dsp-partition-trace-v1"));
    EXPECT_NE(text.find("\"initial_cost\": 7"), std::string::npos);
    EXPECT_NE(text.find("\"final_cost\": 2"), std::string::npos);
    EXPECT_NE(text.find(
                  "{\"node\": \"D\", \"gain\": 4, \"cost_after\": 3}"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find(
                  "{\"node\": \"C\", \"gain\": 1, \"cost_after\": 2}"),
              std::string::npos)
        << text;
}

TEST(PartitionTrace, EmptyGraphExplainsItself)
{
    AllocReport report; // SingleBank/Ideal: no graph built
    std::string text = explainPartition(report);
    EXPECT_NE(text.find("no interference graph"), std::string::npos);
    JsonChecker checker;
    std::string json = partitionTraceJson(report);
    EXPECT_TRUE(checker.parse(json)) << checker.error << "\n" << json;
}

TEST(PartitionTrace, CompileEmitsMoveInstantsMatchingReport)
{
    // A kernel whose arrays interfere pairwise; every greedy move the
    // allocator commits must surface as a "partition.move" instant
    // whose running costs chain from initial to final.
    const char *source = R"(
        int A[8]; int B[8]; int C[8]; int D[8];
        void main() {
            int s = 0;
            for (int i = 0; i < 8; i++) {
                s = s + A[i] * B[i];
                s = s + A[i] * D[i];
                s = s + C[i] * D[i];
            }
            out(s);
        }
    )";
    TraceSession session;
    CompileResult compiled;
    {
        ScopedTraceSession scope(session);
        CompileOptions opts;
        opts.mode = AllocMode::CB;
        compiled = compileSource(source, opts);
    }
    const PartitionResult &partition = compiled.alloc.partition;
    ASSERT_FALSE(partition.moves.empty());

    long running = partition.initialCost;
    std::size_t seen = 0;
    for (const TraceEvent &e : session.events()) {
        if (e.name != "partition.move")
            continue;
        ASSERT_LT(seen, partition.moves.size());
        const PartitionMove &move = partition.moves[seen];
        long gain = -1, cost_before = -1, cost_after = -1;
        std::string node;
        for (const TraceArg &a : e.args) {
            if (a.key == "node")
                node = a.sval;
            if (a.key == "gain")
                gain = static_cast<long>(a.nval);
            if (a.key == "cost_before")
                cost_before = static_cast<long>(a.nval);
            if (a.key == "cost_after")
                cost_after = static_cast<long>(a.nval);
        }
        EXPECT_EQ(node, move.node->name);
        EXPECT_EQ(gain, move.gain);
        EXPECT_EQ(cost_before, running);
        EXPECT_EQ(cost_after, move.costAfter);
        running = cost_after;
        ++seen;
    }
    EXPECT_EQ(seen, partition.moves.size());
    EXPECT_EQ(running, partition.finalCost);
    EXPECT_EQ(session.counters().value("alloc.partition.moves"),
              static_cast<long>(partition.moves.size()));
}

TEST(PartitionTrace, DspccExplainPartitionPrintsDecisions)
{
    const std::string src_path = "partition_trace_cli.c";
    {
        std::ofstream out(src_path);
        out << "int A[4]; int B[4];\n"
               "void main() {\n"
               "  int s = 0;\n"
               "  for (int i = 0; i < 4; i++) s = s + A[i] * B[i];\n"
               "  out(s);\n"
               "}\n";
    }
    const std::string out_path = "partition_trace_cli.out";
    std::string cmd = std::string(DSPCC_BIN) +
                      " --explain-partition " + src_path + " > " +
                      out_path + " 2>&1";
    int rc = std::system(cmd.c_str());
    ASSERT_TRUE(WIFEXITED(rc));
    EXPECT_EQ(WEXITSTATUS(rc), 0);

    std::ifstream in(out_path);
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string text = ss.str();
    std::remove(src_path.c_str());
    std::remove(out_path.c_str());

    EXPECT_NE(text.find("partition decision trace"), std::string::npos)
        << text;
    EXPECT_NE(text.find("greedy descent"), std::string::npos) << text;
    EXPECT_NE(text.find("assignment:"), std::string::npos) << text;
}

} // namespace
} // namespace dsp

/**
 * @file
 * Acceptance test for the dsp-profile-v1 artifact on a real paper
 * workload: profiling the fig8 `lpc` application must rank its
 * autocorrelation inner loop first by cycles, produce byte-identical
 * artifacts from both simulator engines, and satisfy the profile's
 * arithmetic identities (cycle partition, bank-traffic coverage,
 * conflict-freedom of banked configurations, duplication overhead).
 * Also pins the human-readable report's sections on a synthetic
 * profile, so formatting stays testable without a simulation run.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "driver/compiler.hh"
#include "suite/suite.hh"
#include "support/profile.hh"
#include "support/json_checker.hh"

namespace dsp
{
namespace
{

ProgramProfile
profileLpc(Fidelity fid, AllocMode mode)
{
    const Benchmark *lpc = findBenchmark("lpc");
    EXPECT_NE(lpc, nullptr);
    CompileOptions opts;
    opts.mode = mode;
    CompileResult compiled = compileSource(lpc->source, opts);
    RunResult run = runProgram(compiled, lpc->input, 200'000'000, fid,
                               /*collectBlockProfile=*/true);
    EXPECT_EQ(run.output.size(), lpc->expected.size());
    for (std::size_t i = 0; i < run.output.size() &&
                            i < lpc->expected.size();
         ++i)
        EXPECT_EQ(run.output[i].raw, lpc->expected[i]) << "word " << i;
    ProgramProfile p = run.blockProfile;
    p.program = "lpc";
    p.mode = allocModeName(mode);
    return p;
}

TEST(Profile, LpcEnginesEmitIdenticalArtifacts)
{
    ProgramProfile ref = profileLpc(Fidelity::Instrumented,
                                    AllocMode::CB);
    ProgramProfile fast = profileLpc(Fidelity::Fast, AllocMode::CB);
    EXPECT_EQ(profileJson(ref), profileJson(fast));

    testing::JsonChecker checker;
    EXPECT_TRUE(checker.parse(profileJson(ref))) << checker.error;
    EXPECT_TRUE(checker.sawString("dsp-profile-v1"));
    // No engine field: the artifact must not leak which engine ran.
    EXPECT_EQ(profileJson(ref).find("engine"), std::string::npos);
}

TEST(Profile, LpcHotBlockIsTheAutocorrelationLoop)
{
    ProgramProfile p = profileLpc(Fidelity::Fast, AllocMode::CB);
    ASSERT_FALSE(p.empty());

    std::vector<BlockProfileRow> ranked = p.blocks;
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const BlockProfileRow &a,
                        const BlockProfileRow &b) {
                         return a.cycles > b.cycles;
                     });
    // lpc's autocorrelation inner loop runs (N-P)(P+1) times per
    // frame — thousands of iterations, an order of magnitude beyond
    // every other loop. The top-ranked block must be it.
    EXPECT_GT(ranked[0].executions, 1000);
    ASSERT_GT(ranked.size(), 1u);
    EXPECT_GT(ranked[0].cycles, ranked[1].cycles);
}

TEST(Profile, LpcProfileIdentitiesHold)
{
    for (AllocMode mode : {AllocMode::SingleBank, AllocMode::CB,
                           AllocMode::FullDup, AllocMode::Ideal}) {
        ProgramProfile p = profileLpc(Fidelity::Fast, mode);
        long cycle_sum = 0, mem_sum = 0, bank_sum = 0;
        for (const BlockProfileRow &r : p.blocks) {
            cycle_sum += r.cycles;
            mem_sum += r.memOps;
            bank_sum += r.bankOps[0] + r.bankOps[1];
            // Width histogram partitions the block's cycles and
            // reproduces its access count.
            EXPECT_EQ(r.memWidthCycles[0] + r.memWidthCycles[1] +
                          r.memWidthCycles[2],
                      r.cycles);
            EXPECT_EQ(r.memWidthCycles[1] + 2 * r.memWidthCycles[2],
                      r.memOps);
            if (mode != AllocMode::Ideal) {
                // Banked configurations are conflict-free by
                // construction (the port check forbids same-bank
                // pairs).
                EXPECT_EQ(r.conflictCycles[0], 0);
                EXPECT_EQ(r.conflictCycles[1], 0);
            }
        }
        // Attribution is exhaustive, and every access resolved to
        // exactly one bank.
        EXPECT_EQ(cycle_sum, p.totalCycles);
        EXPECT_EQ(bank_sum, mem_sum);

        if (mode == AllocMode::SingleBank) {
            // Everything lives in bank X by definition.
            long y = 0;
            for (const BlockProfileRow &r : p.blocks)
                y += r.bankOps[1];
            EXPECT_EQ(y, 0);
        }
    }
}

TEST(Profile, LpcFullDuplicationPaysVisibleStoreOverhead)
{
    ProgramProfile p = profileLpc(Fidelity::Fast, AllocMode::FullDup);
    long dup_stores = 0;
    for (const BlockProfileRow &r : p.blocks)
        dup_stores += r.dupStoreOps;
    EXPECT_GT(dup_stores, 0)
        << "full duplication must attribute duplicated stores";
}

TEST(Profile, ReportRendersEverySection)
{
    ProgramProfile p;
    p.program = "synthetic";
    p.mode = "CB";
    p.totalCycles = 130;
    BlockProfileRow hot;
    hot.function = "main";
    hot.blockId = 2;
    hot.executions = 10;
    hot.cycles = 100;
    hot.ops = 300;
    hot.memOps = 120;
    hot.memWidthCycles[1] = 40;
    hot.memWidthCycles[2] = 40;
    hot.memWidthCycles[0] = 20;
    hot.bankOps[0] = 70;
    hot.bankOps[1] = 50;
    hot.dupStoreOps = 8;
    BlockProfileRow cold;
    cold.function = "init";
    cold.blockId = 0;
    cold.executions = 1;
    cold.cycles = 30;
    cold.ops = 30;
    cold.memWidthCycles[0] = 30;
    p.blocks = {cold, hot};

    std::string report = profileReport(p);
    EXPECT_NE(report.find("hot blocks (by cycles):"),
              std::string::npos);
    EXPECT_NE(report.find("function cycle shares:"),
              std::string::npos);
    EXPECT_NE(report.find("bank traffic and conflicts"),
              std::string::npos);
    EXPECT_NE(report.find("duplicated-store overhead:"),
              std::string::npos);
    // Hot block leads the ranking.
    EXPECT_LT(report.find("main.bb2"), report.find("init.bb0"));
    // Deterministic rendering.
    EXPECT_EQ(report, profileReport(p));
}

} // namespace
} // namespace dsp

/**
 * @file
 * Telemetry-layer unit tests: spans, counters, ambient installation,
 * thread safety under JobPool concurrency, and strict validity of
 * both export formats (Chrome trace_event JSON and dsp-stats-v2).
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>

#include "driver/compile_cache.hh"
#include "driver/compiler.hh"
#include "support/fault_injection.hh"
#include "support/job_pool.hh"
#include "support/json_checker.hh"
#include "support/telemetry.hh"

namespace dsp
{
namespace
{

using testing::JsonChecker;

TEST(Telemetry, DisabledIsANoOp)
{
    ASSERT_EQ(ambientTraceSession(), nullptr)
        << "tests must start with no ambient session";
    {
        Span span("noop", "test");
        span.arg("k", 1LL);
        EXPECT_FALSE(span.active());
    }
    bumpCounter("noop.counter");
    traceInstant("noop", "test");
    // Nothing to observe — the assertions above prove no crash and no
    // ambient session; a session created afterwards starts empty.
    TraceSession session;
    EXPECT_EQ(session.eventCount(), 0u);
    EXPECT_EQ(session.counters().value("noop.counter"), 0);
}

TEST(Telemetry, SpanRecordsCompleteEventWithArgs)
{
    TraceSession session;
    {
        ScopedTraceSession scope(session);
        Span span("unit.work", "test");
        span.arg("detail", std::string("abc"));
        span.arg("n", 42LL);
    }
    ASSERT_EQ(session.eventCount(), 1u);
    TraceEvent e = session.events()[0];
    EXPECT_EQ(e.phase, TraceEvent::Phase::Complete);
    EXPECT_EQ(e.name, "unit.work");
    EXPECT_EQ(e.category, "test");
    EXPECT_GE(e.durUs, 0.0);
    ASSERT_EQ(e.args.size(), 2u);
    EXPECT_EQ(e.args[0].key, "detail");
    EXPECT_TRUE(e.args[0].isString);
    EXPECT_EQ(e.args[0].sval, "abc");
    EXPECT_EQ(e.args[1].key, "n");
    EXPECT_FALSE(e.args[1].isString);
    EXPECT_EQ(e.args[1].nval, 42);
}

TEST(Telemetry, NestedSpansShareThreadAndContainTimestamps)
{
    TraceSession session;
    {
        ScopedTraceSession scope(session);
        Span outer("outer", "test");
        {
            Span inner("inner", "test");
        }
    }
    // Destruction order records inner first.
    ASSERT_EQ(session.eventCount(), 2u);
    auto events = session.events();
    const TraceEvent &inner = events[0];
    const TraceEvent &outer = events[1];
    EXPECT_EQ(inner.name, "inner");
    EXPECT_EQ(outer.name, "outer");
    EXPECT_EQ(inner.tid, outer.tid);
    // Chrome infers nesting from ts/dur containment per tid.
    EXPECT_GE(inner.tsUs, outer.tsUs);
    EXPECT_LE(inner.tsUs + inner.durUs, outer.tsUs + outer.durUs + 1e-6);
}

TEST(Telemetry, ScopedSessionNestsAndRestores)
{
    TraceSession a, b;
    EXPECT_EQ(ambientTraceSession(), nullptr);
    {
        ScopedTraceSession sa(a);
        EXPECT_EQ(ambientTraceSession(), &a);
        {
            ScopedTraceSession sb(b);
            EXPECT_EQ(ambientTraceSession(), &b);
        }
        EXPECT_EQ(ambientTraceSession(), &a);
    }
    EXPECT_EQ(ambientTraceSession(), nullptr);
}

TEST(Telemetry, CountersAccumulateAndSumByPrefix)
{
    CounterRegistry c;
    c.add("opt.dce.changes", 3);
    c.add("opt.dce.changes");
    c.add("opt.cse.changes", 2);
    c.add("optimist", 100); // shares the byte prefix, not the subtree
    c.max("peak", 5);
    c.max("peak", 3);

    EXPECT_EQ(c.value("opt.dce.changes"), 4);
    EXPECT_EQ(c.value("never.touched"), 0);
    EXPECT_EQ(c.sumPrefix("opt"), 6)
        << "\"optimist\" must not count toward the \"opt\" subtree";
    EXPECT_EQ(c.sumPrefix("opt.dce"), 4);
    EXPECT_EQ(c.value("peak"), 5);
}

TEST(Telemetry, ConcurrentJobPoolSpansAllRecord)
{
    constexpr int kJobs = 64;
    TraceSession session;
    {
        ScopedTraceSession scope(session);
        JobPool pool(4);
        JobLimits limits;
        for (int i = 0; i < kJobs; ++i) {
            limits.name = "job" + std::to_string(i);
            pool.submit(
                [](JobContext &) {
                    Span span("inner.work", "test");
                    bumpCounter("jobs.ran");
                },
                limits);
        }
        pool.wait();
    }
    EXPECT_EQ(session.counters().value("jobs.ran"), kJobs);
    int named = 0, inner = 0;
    for (const TraceEvent &e : session.events()) {
        if (e.category == "job")
            ++named;
        if (e.name == "inner.work")
            ++inner;
    }
    EXPECT_EQ(named, kJobs) << "every pool job records its named span";
    EXPECT_EQ(inner, kJobs);

    // The whole concurrent log still exports strictly-valid JSON.
    std::ostringstream trace, stats;
    session.writeChromeTrace(trace);
    session.writeStats(stats);
    JsonChecker checker;
    EXPECT_TRUE(checker.parse(trace.str())) << checker.error;
    EXPECT_TRUE(checker.parse(stats.str())) << checker.error;
}

TEST(Telemetry, ChromeTraceExportStrictParses)
{
    TraceSession session;
    {
        ScopedTraceSession scope(session);
        Span span("weird \"name\"\n", "cat\\egory");
        span.arg("msg", std::string("tab\there \"quoted\""));
        traceInstant("point", "test",
                     {TraceArg::number("n", -7),
                      TraceArg::str("s", "line1\nline2")});
    }
    std::ostringstream os;
    session.writeChromeTrace(os);
    std::string text = os.str();

    JsonChecker checker;
    ASSERT_TRUE(checker.parse(text)) << checker.error << "\n" << text;
    EXPECT_TRUE(checker.sawString("weird \"name\"\n"));
    EXPECT_TRUE(checker.sawString("line1\nline2"));
    // Chrome format essentials.
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\": \"i\""), std::string::npos);
}

TEST(Telemetry, StatsExportAggregatesSpansByName)
{
    TraceSession session;
    {
        ScopedTraceSession scope(session);
        for (int i = 0; i < 3; ++i) {
            Span span("repeated", "test");
        }
        session.counters().add("a.b", 2);
    }
    std::ostringstream os;
    session.writeStats(os);
    std::string text = os.str();

    JsonChecker checker;
    ASSERT_TRUE(checker.parse(text)) << checker.error << "\n" << text;
    EXPECT_NE(text.find("\"schema\": \"dsp-stats-v2\""),
              std::string::npos);
    EXPECT_NE(text.find("\"name\": \"repeated\", \"count\": 3"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("\"a.b\": 2"), std::string::npos);
}

TEST(Telemetry, CompilePipelineEmitsSpanPerStagePerFunction)
{
    const char *source = R"(
        int helper(int x) { return x * 2; }
        void main() { out(helper(21)); }
    )";
    TraceSession session;
    {
        ScopedTraceSession scope(session);
        CompileOptions opts;
        compileSource(source, opts);
    }

    // Every pipeline stage appears at least once; per-function stages
    // and per-function optimizer passes appear once per function.
    std::map<std::string, int> count;
    std::map<std::string, std::set<std::string>> pass_fns;
    for (const TraceEvent &e : session.events()) {
        ++count[e.name];
        if (e.category == "opt")
            for (const TraceArg &a : e.args)
                if (a.key == "function")
                    pass_fns[e.name].insert(a.sval);
    }
    for (const char *stage :
         {"compile", "frontend.parse", "frontend.sema", "frontend.lower",
          "opt.pipeline", "backend.lower", "alloc.data",
          "backend.regalloc", "backend.frame", "backend.layout",
          "backend.mcverify"})
        EXPECT_GE(count[stage], 1) << "missing stage span: " << stage;
    EXPECT_GE(count["backend.regalloc"], 2)
        << "one regalloc span per function";
    ASSERT_NE(pass_fns.find("opt.dce"), pass_fns.end());
    EXPECT_EQ(pass_fns["opt.dce"].size(), 2u)
        << "opt passes span each function";

    EXPECT_GE(session.counters().value("ir.ops.before_opt"), 1);
    EXPECT_GE(session.counters().value("ir.ops.after_opt"), 1);
}

TEST(Telemetry, CompileCacheCountsHitsAndMisses)
{
    const char *source = "void main() { out(1); }";
    TraceSession session;
    {
        ScopedTraceSession scope(session);
        CompileCache cache;
        CompileOptions opts;
        cache.get(source, opts);
        cache.get(source, opts);
        cache.get(source, opts);
    }
    EXPECT_EQ(session.counters().value("compile.cache.miss"), 1);
    EXPECT_EQ(session.counters().value("compile.cache.hit"), 2);
}

TEST(Telemetry, RollbacksBecomeCountersAndInstants)
{
    // Arm a fault in a pass; the resilient pipeline rolls back and the
    // telemetry layer must mirror the degradation.
    FaultPlan plan;
    plan.arm("opt.dce", 1);
    ScopedFaultPlan fault_scope(plan);

    TraceSession session;
    {
        ScopedTraceSession scope(session);
        CompileOptions opts;
        opts.resilient = true;
        auto compiled =
            compileSource("void main() { out(2 + 3); }", opts);
        EXPECT_TRUE(compiled.degraded());
    }
    EXPECT_GE(session.counters().value("opt.rollbacks"), 1);
    bool saw_rollback = false, saw_degradation = false;
    for (const TraceEvent &e : session.events()) {
        if (e.phase != TraceEvent::Phase::Instant)
            continue;
        saw_rollback |= e.name == "pass.rollback";
        saw_degradation |= e.name == "degradation";
    }
    EXPECT_TRUE(saw_rollback);
    EXPECT_TRUE(saw_degradation);
}

} // namespace
} // namespace dsp

/**
 * @file
 * Tracing-overhead smoke check: running a suite benchmark with an
 * ambient TraceSession installed must not meaningfully slow the
 * simulator's fast path. The hot loop's only telemetry cost is one
 * relaxed atomic load per runProgram call (the sim itself records a
 * single "sim.run" span per run), so traced and untraced wall time
 * should be statistically indistinguishable; the assertion bound is
 * deliberately generous (1.25x) to survive noisy CI machines, and the
 * measured ratio is logged so regressions are visible before they
 * trip it. Measured locally the ratio stays within 5%.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <iostream>
#include <limits>

#include "driver/compiler.hh"
#include "suite/suite.hh"
#include "support/telemetry.hh"

namespace dsp
{
namespace
{

double
timeOneRun(const CompileResult &compiled, const Benchmark &bench)
{
    auto t0 = std::chrono::steady_clock::now();
    RunResult r = runProgram(compiled, bench.input, 200'000'000,
                             Fidelity::Fast);
    auto t1 = std::chrono::steady_clock::now();
    EXPECT_GT(r.stats.cycles, 0);
    return std::chrono::duration<double>(t1 - t0).count();
}

TEST(TraceOverhead, TracedRunStaysCloseToUntraced)
{
    // The fig7 workload's biggest kernel: a real simulation-dominated
    // run (hundreds of thousands of cycles), compiled once outside the
    // timed region so only the simulator is under test.
    const Benchmark *bench = findBenchmark("fir_256_64");
    if (!bench)
        bench = allBenchmarks().front();
    ASSERT_NE(bench, nullptr);

    CompileOptions opts;
    opts.mode = AllocMode::CB;
    CompileResult compiled = compileSource(bench->source, opts);

    // Warm up caches/allocator before measuring either arm.
    timeOneRun(compiled, *bench);

    // Interleaved min-of-N: alternating arms cancels machine-wide
    // drift (thermal, scheduler), and min-of-N is robust to one-sided
    // noise since timing jitter only ever adds time.
    constexpr int kRounds = 7;
    double untraced = std::numeric_limits<double>::infinity();
    double traced = std::numeric_limits<double>::infinity();
    for (int i = 0; i < kRounds; ++i) {
        untraced = std::min(untraced, timeOneRun(compiled, *bench));
        TraceSession session;
        {
            ScopedTraceSession scope(session);
            traced = std::min(traced, timeOneRun(compiled, *bench));
        }
        EXPECT_GE(session.eventCount(), 1u)
            << "the traced arm must actually record the sim.run span";
    }

    ASSERT_GT(untraced, 0.0);
    double ratio = traced / untraced;
    std::cout << "[ overhead ] untraced min " << untraced * 1e3
              << " ms, traced min " << traced * 1e3 << " ms, ratio "
              << ratio << "\n";
    RecordProperty("trace_overhead_ratio", std::to_string(ratio));
    EXPECT_LT(ratio, 1.25)
        << "tracing overhead ratio " << ratio
        << " — the sim fast path must not pay for telemetry";
}

TEST(TraceOverhead, HistogramOffPathIsOneRelaxedLoad)
{
    // recordLatencyUs with no ambient session must cost one relaxed
    // atomic load and nothing else — the same contract bumpCounter
    // honors. Two million calls finishing in generous wall time (well
    // under a microsecond each even on a loaded CI box) pins that the
    // off path never takes a lock or touches a registry.
    constexpr long long kCalls = 2'000'000;
    auto t0 = std::chrono::steady_clock::now();
    for (long long i = 0; i < kCalls; ++i)
        recordLatencyUs("serve.latency.total", i);
    auto t1 = std::chrono::steady_clock::now();
    double perCallNs =
        std::chrono::duration<double, std::nano>(t1 - t0).count() /
        static_cast<double>(kCalls);
    std::cout << "[ overhead ] histogram off-path " << perCallNs
              << " ns/call\n";
    RecordProperty("histogram_off_path_ns", std::to_string(perCallNs));
    EXPECT_LT(perCallNs, 1000.0)
        << "the disabled histogram path must stay branch-and-return";

    // And none of those calls may have leaked into a session that
    // arrives later: telemetry off means off, not deferred.
    TraceSession session;
    ScopedTraceSession scope(session);
    EXPECT_EQ(session.histograms().find("serve.latency.total"),
              nullptr);
}

} // namespace
} // namespace dsp

/**
 * @file
 * Optimizer unit tests. Each pass is checked two ways: structurally
 * (the expected IR shape appears/disappears) and semantically (the
 * optimized program still computes the same outputs).
 */

#include <gtest/gtest.h>

#include "driver/compiler.hh"
#include "ir/module.hh"
#include "ir/printer.hh"
#include "ir/verifier.hh"
#include "lower/lower.hh"
#include "minic/parser.hh"
#include "minic/sema.hh"
#include "opt/passes.hh"
#include "support/fault_injection.hh"

namespace dsp
{
namespace
{

std::unique_ptr<Module>
lower(const std::string &src)
{
    auto prog = parseProgram(src);
    analyzeProgram(*prog);
    return lowerProgram(*prog);
}

int
countOpcode(const Function &fn, Opcode op)
{
    int n = 0;
    for (const auto &bb : fn.blocks)
        for (const Op &o : bb->ops)
            if (o.opcode == op)
                ++n;
    return n;
}

std::size_t
totalOps(const Module &mod)
{
    std::size_t n = 0;
    for (const auto &fn : mod.functions)
        n += fn->opCount();
    return n;
}

/** Optimized and unoptimized binaries must produce identical output. */
void
expectSemanticsPreserved(const std::string &src,
                         const std::vector<int32_t> &input = {})
{
    CompileOptions raw;
    raw.optLevel = 0;
    raw.mode = AllocMode::SingleBank;
    auto r0 = runProgram(compileSource(src, raw), packInputInts(input));

    CompileOptions opt;
    opt.optLevel = 1;
    opt.mode = AllocMode::SingleBank;
    auto r1 = runProgram(compileSource(src, opt), packInputInts(input));

    EXPECT_EQ(r0.output, r1.output) << src;
    // Optimization should never slow the program down.
    EXPECT_LE(r1.stats.cycles, r0.stats.cycles);
}

TEST(ConstFold, FoldsConstantArithmetic)
{
    auto mod = lower("void main() { out(2 + 3 * 4); }");
    runStandardPipeline(*mod);
    Function *fn = mod->findFunction("main");
    EXPECT_EQ(countOpcode(*fn, Opcode::Add), 0);
    EXPECT_EQ(countOpcode(*fn, Opcode::Mul), 0);
    // The whole expression collapses to movi 14.
    bool found = false;
    for (const auto &bb : fn->blocks)
        for (const Op &op : bb->ops)
            if (op.opcode == Opcode::MovI && op.imm == 14)
                found = true;
    EXPECT_TRUE(found);
}

TEST(ConstFold, StrengthReducesToImmediateForms)
{
    auto mod = lower(R"(
        void main() {
            int x = in();
            out(x + 5);
            out(x * 3);
            out(x << 2);
        }
    )");
    runStandardPipeline(*mod);
    Function *fn = mod->findFunction("main");
    EXPECT_EQ(countOpcode(*fn, Opcode::Add), 0);
    EXPECT_EQ(countOpcode(*fn, Opcode::Mul), 0);
    EXPECT_GE(countOpcode(*fn, Opcode::AddI), 1);
    EXPECT_GE(countOpcode(*fn, Opcode::MulI), 1);
    EXPECT_GE(countOpcode(*fn, Opcode::ShlI), 1);
}

TEST(ConstFold, FoldsFloatConstants)
{
    auto mod = lower("void main() { outf(1.5 * 4.0 + 0.25); }");
    runStandardPipeline(*mod);
    Function *fn = mod->findFunction("main");
    EXPECT_EQ(countOpcode(*fn, Opcode::FMul), 0);
    EXPECT_EQ(countOpcode(*fn, Opcode::FAdd), 0);
}

TEST(Dce, RemovesDeadComputation)
{
    auto mod = lower(R"(
        void main() {
            int unused = in() * 0 + 17;
            int dead2 = unused + 1;
            out(5);
        }
    )");
    runStandardPipeline(*mod);
    Function *fn = mod->findFunction("main");
    // The In cannot be removed (stream side effect), but all the
    // arithmetic feeding the dead values must be gone.
    EXPECT_EQ(countOpcode(*fn, Opcode::In), 1);
    EXPECT_EQ(countOpcode(*fn, Opcode::AddI), 0);
}

TEST(Dce, KeepsStoresAndCalls)
{
    auto mod = lower(R"(
        int g;
        int f() { g = g + 1; return g; }
        void main() { f(); out(g); }
    )");
    runStandardPipeline(*mod);
    EXPECT_EQ(countOpcode(*mod->findFunction("main"), Opcode::Call), 1);
}

TEST(MacFuse, FusesMultiplyAccumulate)
{
    auto mod = lower(R"(
        int a[8];
        int b[8];
        void main() {
            int s = 0;
            for (int i = 0; i < 8; i++)
                s += a[i] * b[i];
            out(s);
        }
    )");
    runStandardPipeline(*mod);
    Function *fn = mod->findFunction("main");
    EXPECT_GE(countOpcode(*fn, Opcode::Mac), 1);
    EXPECT_EQ(countOpcode(*fn, Opcode::Mul), 0);
}

TEST(MacFuse, FusesFloatMac)
{
    auto mod = lower(R"(
        float a[8];
        float b[8];
        void main() {
            float s = 0.0;
            for (int i = 0; i < 8; i++)
                s += a[i] * b[i];
            outf(s);
        }
    )");
    runStandardPipeline(*mod);
    EXPECT_GE(countOpcode(*mod->findFunction("main"), Opcode::FMac), 1);
}

TEST(MacFuse, DoesNotFuseMultiUseProducts)
{
    auto mod = lower(R"(
        void main() {
            int x = in();
            int y = in();
            int p = x * y;
            int s = in() + p;
            out(s);
            out(p);
        }
    )");
    runStandardPipeline(*mod);
    // p has two uses; the multiply must survive.
    Function *fn = mod->findFunction("main");
    EXPECT_EQ(countOpcode(*fn, Opcode::Mac), 0);
    EXPECT_EQ(countOpcode(*fn, Opcode::Mul), 1);
}

TEST(SimplifyCfg, MergesStraightLineChains)
{
    // Lowering produces separate cond/body/step blocks for the loop;
    // simplification and rotation fuse them.
    auto mod = lower(R"(
        int a[8];
        void main() {
            for (int i = 0; i < 8; i++)
                a[i] = i;
            out(a[5]);
        }
    )");
    std::size_t blocks_before = mod->findFunction("main")->blocks.size();
    runStandardPipeline(*mod);
    EXPECT_LT(mod->findFunction("main")->blocks.size(), blocks_before);
    EXPECT_TRUE(verifyModule(*mod).empty());
}

TEST(LoopRotate, BottomTestsCountedLoops)
{
    auto mod = lower(R"(
        int a[16];
        void main() {
            for (int i = 0; i < 16; i++)
                a[i] = i;
            out(a[7]);
        }
    )");
    runStandardPipeline(*mod);
    // After rotation + merge, some block must end with
    // `bt cond, self`: a bottom-tested loop.
    bool self_loop = false;
    Function *fn = mod->findFunction("main");
    for (const auto &bb : fn->blocks) {
        if (bb->ops.size() >= 2 &&
            bb->ops[bb->ops.size() - 2].opcode == Opcode::Bt &&
            bb->ops[bb->ops.size() - 2].target == bb.get())
            self_loop = true;
    }
    EXPECT_TRUE(self_loop);
}

TEST(StrengthReduce, MaterializesDerivedIndex)
{
    auto mod = lower(R"(
        int a[32];
        void main() {
            int m = in();
            int s = 0;
            for (int n = 0; n < 16; n++)
                s += a[n] * a[n + m];
            out(s);
        }
    )");
    runStandardPipeline(*mod);
    // The in-loop `n + m` add must be gone: both loads now use
    // independent induction registers.
    Function *fn = mod->findFunction("main");
    for (const auto &bb : fn->blocks) {
        if (bb->loopDepth == 0)
            continue;
        EXPECT_EQ(countOpcode(*fn, Opcode::Add), 0);
    }
}

TEST(Unroll, DoublesCountedLoopBodies)
{
    auto mod = lower(R"(
        int a[16];
        int b[16];
        void main() {
            int s = 0;
            for (int i = 0; i < 16; i++)
                s += a[i] * b[i];
            out(s);
        }
    )");
    runStandardPipeline(*mod);
    // The unrolled loop body holds two MAC operations.
    Function *fn = mod->findFunction("main");
    int max_macs_in_block = 0;
    for (const auto &bb : fn->blocks) {
        int macs = 0;
        for (const Op &op : bb->ops)
            if (op.opcode == Opcode::Mac)
                ++macs;
        max_macs_in_block = std::max(max_macs_in_block, macs);
    }
    EXPECT_EQ(max_macs_in_block, 2);
}

TEST(Unroll, SkipsOddTripCounts)
{
    auto mod = lower(R"(
        int a[15];
        int b[15];
        void main() {
            int s = 0;
            for (int i = 0; i < 15; i++)
                s += a[i] * b[i];
            out(s);
        }
    )");
    runStandardPipeline(*mod);
    Function *fn = mod->findFunction("main");
    int max_macs_in_block = 0;
    for (const auto &bb : fn->blocks) {
        int macs = 0;
        for (const Op &op : bb->ops)
            if (op.opcode == Opcode::Mac)
                ++macs;
        max_macs_in_block = std::max(max_macs_in_block, macs);
    }
    EXPECT_EQ(max_macs_in_block, 1);
}

TEST(MemoryCse, ReusesRepeatedLoads)
{
    auto mod = lower(R"(
        int a[8];
        void main() {
            int i = in();
            out(a[i] + a[i]);
        }
    )");
    runStandardPipeline(*mod);
    EXPECT_EQ(countOpcode(*mod->findFunction("main"), Opcode::Ld), 1);
}

TEST(MemoryCse, ForwardsStoresToLoads)
{
    auto mod = lower(R"(
        int a[8];
        void main() {
            a[2] = in();
            out(a[2]);
        }
    )");
    runStandardPipeline(*mod);
    EXPECT_EQ(countOpcode(*mod->findFunction("main"), Opcode::Ld), 0);
}

TEST(MemoryCse, RespectsInterveningStores)
{
    auto mod = lower(R"(
        int a[8];
        void main() {
            int i = in();
            int j = in();
            int x = a[i];
            a[j] = 5;
            out(x + a[i]);
        }
    )");
    runStandardPipeline(*mod);
    // a[j] may alias a[i]: the second load must remain.
    EXPECT_EQ(countOpcode(*mod->findFunction("main"), Opcode::Ld), 2);
}

// --- semantic preservation sweeps ------------------------------------

struct OptCase
{
    const char *name;
    const char *src;
    std::vector<int32_t> input;
};

class OptSemantics : public ::testing::TestWithParam<OptCase>
{
};

TEST_P(OptSemantics, OutputUnchanged)
{
    expectSemanticsPreserved(GetParam().src, GetParam().input);
}

const OptCase kCases[] = {
    {"ShortCircuit",
     "void main() { int a = in(); int b = in();"
     " if (a > 0 && b > 0) out(1); else out(0);"
     " out(a > 2 || b < 1); }",
     {3, -1}},
    {"NestedLoops",
     "int m[4][4]; void main() {"
     " for (int i = 0; i < 4; i++)"
     "  for (int j = 0; j < 4; j++)"
     "   m[i][j] = i * 4 + j;"
     " int t = 0;"
     " for (int i = 0; i < 4; i++) t += m[i][i];"
     " out(t); }",
     {}},
    {"WhileWithBreak",
     "void main() { int n = in(); int i = 0;"
     " while (1) { if (i >= n) break; i++; }"
     " out(i); }",
     {9}},
    {"DoWhileContinue",
     "void main() { int s = 0; int i = 0;"
     " do { i++; if (i % 2 == 0) continue; s += i; } while (i < 10);"
     " out(s); }",
     {}},
    {"FloatChain",
     "void main() { float x = inf(); float y = x * 2.0 + 1.0;"
     " outf(y / 4.0 - x); }",
     {0x40000000}}, // 2.0f
    {"IncDecForms",
     "int a[4]; void main() { int i = 0;"
     " a[i++] = 10; a[i] = 20; ++i; a[i--] = 30; out(a[0] + a[1] + a[2]);"
     " out(i); }",
     {}},
    {"CompoundAssignArrays",
     "int a[4]; void main() { a[1] = 5; a[1] += 2; a[1] -= 1;"
     " a[1] *= 3; out(a[1]); }",
     {}},
    {"DeepExpression",
     "void main() { int a = in(); out(((a + 1) * (a - 1)) % 7 +"
     " ((a << 2) ^ (a >> 1) | (a & 12))); }",
     {37}},
    {"RecursionFactorial",
     "int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }"
     "void main() { out(fact(6)); }",
     {}},
    {"NegativeBounds",
     "void main() { int s = 0;"
     " for (int i = 10; i > -10; i -= 3) s += i; out(s); }",
     {}},
};

INSTANTIATE_TEST_SUITE_P(Programs, OptSemantics,
                         ::testing::ValuesIn(kCases),
                         [](const auto &info) {
                             return std::string(info.param.name);
                         });

TEST(Pipeline, NeverGrowsOpsUnboundedly)
{
    auto mod = lower(R"(
        int a[32];
        void main() {
            for (int i = 0; i < 32; i++)
                a[i] = i * i;
            int s = 0;
            for (int i = 0; i < 32; i++)
                s += a[i];
            out(s);
        }
    )");
    std::size_t before = totalOps(*mod);
    runStandardPipeline(*mod);
    // Unrolling doubles loop bodies; anything beyond ~4x signals a
    // pass feeding on its own output.
    EXPECT_LT(totalOps(*mod), 4 * before);
    EXPECT_TRUE(verifyModule(*mod).empty());
}

namespace
{

const char *kResilienceProgram = R"(
    int a[16];
    void main() {
        int s = 0;
        for (int i = 0; i < 16; i++) {
            a[i] = 3 * i + 1;
            s += a[i] * 2;
        }
        out(s);
    }
)";

} // namespace

TEST(ResilientPipeline, MatchesStandardPipelineWithoutFaults)
{
    auto plain = lower(kResilienceProgram);
    auto guarded = lower(kResilienceProgram);

    int changes = runStandardPipeline(*plain);
    PipelineReport report = runResilientPipeline(*guarded);

    EXPECT_TRUE(report.degradations.empty());
    EXPECT_EQ(report.changes, changes);
    // Same passes in the same order on identical input: the guarded
    // pipeline must be a bit-identical no-op wrapper when nothing fails.
    EXPECT_EQ(printModule(*guarded), printModule(*plain));
}

TEST(ResilientPipeline, RollsBackAndDisablesAThrowingPass)
{
    auto mod = lower(kResilienceProgram);

    FaultPlan plan;
    plan.arm("opt.dce", 1, FaultKind::Throw, /*one_shot=*/false);
    ScopedFaultPlan scope(plan);

    PipelineReport report = runResilientPipeline(*mod);
    ASSERT_FALSE(report.degradations.empty());
    EXPECT_EQ(report.degradations[0].pass, "opt.dce");
    EXPECT_EQ(report.degradations[0].function, "main");
    EXPECT_NE(report.degradations[0].detail.find("injected fault"),
              std::string::npos);
    // Persistent fault + per-function disable: it fired exactly once.
    EXPECT_EQ(plan.totalFired(), 1u);
    EXPECT_TRUE(verifyModule(*mod).empty());
}

TEST(ResilientPipeline, RollsBackIrCorruptionViaTheVerifier)
{
    auto mod = lower(kResilienceProgram);

    FaultPlan plan;
    plan.arm("opt.constfold", 1, FaultKind::CorruptIr);
    ScopedFaultPlan scope(plan);

    PipelineReport report = runResilientPipeline(*mod);
    ASSERT_FALSE(report.degradations.empty());
    EXPECT_EQ(report.degradations[0].pass, "opt.constfold");
    EXPECT_NE(report.degradations[0].detail.find("verifier:"),
              std::string::npos);
    EXPECT_TRUE(verifyModule(*mod).empty());
}

TEST(ResilientPipeline, StrictPipelinePropagatesInjectedFaults)
{
    auto mod = lower(kResilienceProgram);
    FaultPlan plan;
    plan.arm("opt.copyprop");
    ScopedFaultPlan scope(plan);
    EXPECT_THROW(runStandardPipeline(*mod), InjectedFault);
}

} // namespace
} // namespace dsp

/**
 * @file
 * The per-request observability surfaces of DESIGN.md §15, end to end
 * over a real socket: the NDJSON access log (exactly one strict-JSON
 * line per answered request, flags faithful to outcome), the
 * dsp-stats-v2 document (gauges + latency-histogram quantiles on top
 * of the v1 counters/spans), the "metrics" Prometheus exposition op,
 * and the drain reply's embedded final snapshot.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "driver/server.hh"
#include "support/fault_injection.hh"

#include "serve_util.hh"
#include "support/json_checker.hh"

using namespace dsp;
using namespace dsp::serve_test;

namespace
{

/** Read the access log back as parsed lines, strict-checking each
 *  one (the NDJSON contract: every line alone must satisfy
 *  RFC-8259). */
std::vector<json::Value>
readAccessLog(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "missing access log " << path;
    std::vector<json::Value> rows;
    std::string line;
    while (std::getline(in, line)) {
        dsp::testing::JsonChecker checker;
        EXPECT_TRUE(checker.parse(line))
            << "access-log line is not strict JSON: " << checker.error
            << "\n  " << line;
        rows.push_back(json::parse(line));
    }
    return rows;
}

/** The access-log rows for op == @p op. */
std::vector<const json::Value *>
rowsForOp(const std::vector<json::Value> &rows, const std::string &op)
{
    std::vector<const json::Value *> out;
    for (const json::Value &r : rows)
        if (r.stringAt("op") == op)
            out.push_back(&r);
    return out;
}

/** The "serve.latency.total" entry of a stats reply's histograms
 *  array (nullptr when absent). */
const json::Value *
totalHistogram(const json::Value &statsResp)
{
    const json::Value *stats = statsResp.find("stats");
    if (!stats)
        return nullptr;
    const json::Value *hists = stats->find("histograms");
    if (!hists || !hists->isArray())
        return nullptr;
    for (const json::Value &h : hists->items)
        if (h.stringAt("name") == "serve.latency.total")
            return &h;
    return nullptr;
}

} // namespace

TEST(ServeAccessLog, OneStrictLinePerRequestWithMatchingIds)
{
    ScratchDir dir("serve-alog");
    ServeOptions opts;
    opts.socketPath = dir.file("s.sock");
    opts.accessLogPath = dir.file("access.ndjson");
    Server server(opts);
    server.start();

    {
        ServeClient client(opts.socketPath);
        EXPECT_TRUE(client.call("{\"id\":1,\"op\":\"ping\"}")
                        .find("ok")
                        ->boolean);
        expectSum(client.call(compileLine(2, kSumSource)), 45);
        expectSum(client.call(compileLine(3, kSumSource)), 45); // warm
        // A user error still earns its row.
        json::Value bad = client.call(compileLine(4, "int main( {{{"));
        EXPECT_EQ(bad.find("error")->stringAt("kind"), "user");
        // So do protocol rejects (unknown op).
        json::Value unknown =
            client.call("{\"id\":5,\"op\":\"frobnicate\"}");
        EXPECT_EQ(unknown.find("error")->stringAt("kind"), "protocol");
        client.call("{\"id\":6,\"op\":\"stats\"}");
    }
    server.stop();

    std::vector<json::Value> rows =
        readAccessLog(opts.accessLogPath);
    // Exactly one line per answered request, ids preserved.
    std::vector<long long> ids;
    for (const json::Value &r : rows)
        ids.push_back(r.longAt("id", -1));
    std::sort(ids.begin(), ids.end());
    EXPECT_EQ(ids, (std::vector<long long>{1, 2, 3, 4, 5, 6}));

    // Outcomes and flags are faithful to what each request did.
    auto compiles = rowsForOp(rows, "compile");
    ASSERT_EQ(compiles.size(), 3u);
    std::map<long long, const json::Value *> byId;
    for (const json::Value *r : compiles)
        byId[r->longAt("id")] = r;
    EXPECT_EQ(byId[2]->stringAt("outcome"), "ok");
    EXPECT_EQ(byId[2]->stringAt("cached"), "none");
    EXPECT_EQ(byId[3]->stringAt("outcome"), "ok");
    EXPECT_EQ(byId[3]->stringAt("cached"), "memory");
    EXPECT_EQ(byId[4]->stringAt("outcome"), "error");
    for (const json::Value *r : compiles) {
        EXPECT_FALSE(r->find("shed")->boolean);
        EXPECT_FALSE(r->find("timeout")->boolean);
        const json::Value *timing = r->find("timing_us");
        ASSERT_NE(timing, nullptr);
        EXPECT_GT(timing->numberAt("total"), 0.0);
        EXPECT_GE(timing->numberAt("total"),
                  timing->numberAt("write"));
    }
    // The cold compile actually spent time compiling; the warm one
    // skipped that work.
    EXPECT_GT(byId[2]->find("timing_us")->numberAt("compile"),
              byId[3]->find("timing_us")->numberAt("compile"));
    // Control and reject rows exist with their own outcomes.
    ASSERT_EQ(rowsForOp(rows, "ping").size(), 1u);
    ASSERT_EQ(rowsForOp(rows, "stats").size(), 1u);
    auto frob = rowsForOp(rows, "frobnicate");
    ASSERT_EQ(frob.size(), 1u);
    EXPECT_EQ(frob[0]->stringAt("outcome"), "protocol");
}

TEST(ServeAccessLog, ShedTimeoutAndDegradedRowsCarryTheirFlags)
{
    ScratchDir dir("serve-alog-flags");

    // Phase 1: shed. One worker and a two-deep budget; two slow
    // requests fill it, and — because control ops bypass admission —
    // a stats poll can wait for that state before the probe compile
    // deterministically sheds.
    {
        ServeOptions opts;
        opts.socketPath = dir.file("s1.sock");
        opts.accessLogPath = dir.file("a1.ndjson");
        opts.threads = 1;
        opts.maxPending = 2;
        Server server(opts);
        server.start();
        ServeClient slow(opts.socketPath);
        slow.sendLine(compileLine(10, slowSource()));
        slow.sendLine(compileLine(11, slowSource(8'000'001)));
        ServeClient fast(opts.socketPath);
        auto giveUp = deadlineAfter(30.0);
        long long pending = 0;
        while (pending < 2 && !giveUp()) {
            json::Value stats = fast.call("{\"id\":1,\"op\":\"stats\"}");
            pending = stats.find("stats")->find("gauges")->longAt(
                "pending_requests", 0);
        }
        ASSERT_EQ(pending, 2) << "slow requests never filled the budget";
        json::Value shedResp = fast.call(compileLine(12, kSumSource));
        ASSERT_EQ(shedResp.find("error")->stringAt("kind"),
                  "overloaded");
        EXPECT_NO_THROW(slow.readLine()); // let the slots drain
        EXPECT_NO_THROW(slow.readLine());
        server.stop();

        std::vector<json::Value> rows =
            readAccessLog(opts.accessLogPath);
        bool sawShed = false;
        for (const json::Value &r : rows) {
            if (r.stringAt("outcome") != "shed")
                continue;
            sawShed = true;
            EXPECT_TRUE(r.find("shed")->boolean);
            EXPECT_EQ(r.longAt("id"), 12);
        }
        EXPECT_TRUE(sawShed) << "no shed row in the access log";
    }

    // Phase 2: timeout. An always-expired deadline with no retry
    // budget turns the compile into a "timeout" row.
    {
        ServeOptions opts;
        opts.socketPath = dir.file("s2.sock");
        opts.accessLogPath = dir.file("a2.ndjson");
        opts.requestTimeoutSeconds = 1e-9;
        opts.requestRetries = 0;
        Server server(opts);
        server.start();
        ServeClient client(opts.socketPath);
        json::Value resp = client.call(compileLine(20, kSumSource));
        ASSERT_EQ(resp.find("error")->stringAt("kind"), "timeout");
        server.stop();

        std::vector<json::Value> rows =
            readAccessLog(opts.accessLogPath);
        ASSERT_EQ(rows.size(), 1u);
        EXPECT_EQ(rows[0].longAt("id"), 20);
        EXPECT_EQ(rows[0].stringAt("outcome"), "timeout");
        EXPECT_TRUE(rows[0].find("timeout")->boolean);
        EXPECT_FALSE(rows[0].find("shed")->boolean);
    }

    // Phase 3: degraded. An injected backend fault under "resilient"
    // serves a degraded result — the row says so.
    {
        ServeOptions opts;
        opts.socketPath = dir.file("s3.sock");
        opts.accessLogPath = dir.file("a3.ndjson");
        Server server(opts);
        server.start();
        FaultPlan plan;
        plan.arm("backend.regalloc");
        ScopedFaultPlan scope(plan);
        ServeClient client(opts.socketPath);
        json::Value degraded = client.call(
            compileLine(30, kSumSource, "\"resilient\":true"));
        expectSum(degraded, 45);
        ASSERT_TRUE(
            degraded.find("result")->find("degraded")->boolean);
        server.stop();

        std::vector<json::Value> rows =
            readAccessLog(opts.accessLogPath);
        ASSERT_EQ(rows.size(), 1u);
        EXPECT_EQ(rows[0].longAt("id"), 30);
        EXPECT_EQ(rows[0].stringAt("outcome"), "ok");
        EXPECT_TRUE(rows[0].find("degraded")->boolean);
    }
}

TEST(ServeStatsV2, SchemaGaugesAndHistogramQuantilesRoundTrip)
{
    ScratchDir dir("serve-statsv2");
    ServeOptions opts;
    opts.socketPath = dir.file("s.sock");
    Server server(opts);
    server.start();

    ServeClient client(opts.socketPath);
    for (long long i = 0; i < 8; ++i)
        expectSum(client.call(compileLine(i, kSumSource)), 45);

    // The server records a request's histograms just after writing
    // its response, so the client can observe its own final reply a
    // hair before the count catches up — poll past that window.
    std::string raw;
    json::Value resp;
    auto giveUp = deadlineAfter(30.0);
    do {
        raw = client.callRaw("{\"id\":99,\"op\":\"stats\"}");
        resp = json::parse(raw);
        const json::Value *t = totalHistogram(resp);
        if (t && t->longAt("count") >= 8)
            break;
    } while (!giveUp());
    dsp::testing::JsonChecker checker;
    ASSERT_TRUE(checker.parse(raw))
        << "stats reply is not strict JSON: " << checker.error;
    const json::Value *stats = resp.find("stats");
    ASSERT_NE(stats, nullptr);
    EXPECT_EQ(stats->stringAt("schema"), "dsp-stats-v2");

    // v1 members survive byte-compatible: counters object, spans
    // array, and the legacy flat gauge fields.
    ASSERT_NE(stats->find("counters"), nullptr);
    ASSERT_NE(stats->find("spans"), nullptr);
    EXPECT_GE(stats->longAt("cache_entries", -1), 1);
    EXPECT_GE(stats->longAt("pending_requests", -1), 0);

    // v2 gauges render from the same registry as the flat fields.
    const json::Value *gauges = stats->find("gauges");
    ASSERT_NE(gauges, nullptr);
    EXPECT_EQ(gauges->longAt("cache_entries", -1),
              stats->longAt("cache_entries", -2));
    EXPECT_EQ(gauges->longAt("draining", -1), 0);

    // v2 histograms carry the quantile ladder for every admitted
    // request.
    const json::Value *total = totalHistogram(resp);
    ASSERT_NE(total, nullptr);
    EXPECT_EQ(total->longAt("count"), 8);
    long long p50 = total->longAt("p50_us");
    long long p90 = total->longAt("p90_us");
    long long p99 = total->longAt("p99_us");
    long long p999 = total->longAt("p999_us");
    EXPECT_GT(p50, 0);
    EXPECT_LE(p50, p90);
    EXPECT_LE(p90, p99);
    EXPECT_LE(p99, p999);
    EXPECT_LE(total->longAt("min_us"), p50);
    EXPECT_LE(p999, total->longAt("max_us"));

    // The per-tier split exists too: all 8 were admitted compiles.
    const json::Value *hists = stats->find("histograms");
    bool sawQueue = false;
    for (const json::Value &h : hists->items)
        if (h.stringAt("name") == "serve.latency.queue")
            sawQueue = true;
    EXPECT_TRUE(sawQueue);
    server.stop();
}

TEST(ServeStatsV2, MetricsOpReturnsPrometheusText)
{
    ScratchDir dir("serve-prom");
    ServeOptions opts;
    opts.socketPath = dir.file("s.sock");
    Server server(opts);
    server.start();

    ServeClient client(opts.socketPath);
    expectSum(client.call(compileLine(1, kSumSource)), 45);
    json::Value resp = client.call("{\"id\":2,\"op\":\"metrics\"}");
    EXPECT_TRUE(resp.find("ok")->boolean);
    EXPECT_EQ(resp.stringAt("schema"), "dsp-metrics-v1");
    std::string text = resp.stringAt("metrics");
    EXPECT_NE(text.find("# TYPE dsp_serve_requests counter"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE dsp_pending_requests gauge"),
              std::string::npos);
    EXPECT_NE(
        text.find(
            "# TYPE dsp_serve_latency_total_seconds summary"),
        std::string::npos);
    EXPECT_NE(text.find(
                  "dsp_serve_latency_total_seconds{quantile=\"0.99\"}"),
              std::string::npos);
    EXPECT_NE(text.find("dsp_serve_latency_total_seconds_count 1"),
              std::string::npos);
    server.stop();
}

TEST(ServeStatsV2, DrainReplyEmbedsFinalSnapshot)
{
    ScratchDir dir("serve-drainstats");
    ServeOptions opts;
    opts.socketPath = dir.file("s.sock");
    Server server(opts);
    server.start();

    ServeClient client(opts.socketPath);
    expectSum(client.call(compileLine(1, kSumSource)), 45);
    json::Value drain = client.call("{\"id\":2,\"op\":\"drain\"}");
    EXPECT_TRUE(drain.find("ok")->boolean);
    EXPECT_TRUE(drain.find("draining")->boolean);
    // The embedded snapshot is a full dsp-stats-v2 document: an
    // operator keeps the end-of-life quantiles without racing the
    // process teardown.
    const json::Value *stats = drain.find("stats");
    ASSERT_NE(stats, nullptr);
    EXPECT_EQ(stats->stringAt("schema"), "dsp-stats-v2");
    const json::Value *total = totalHistogram(drain);
    ASSERT_NE(total, nullptr);
    EXPECT_EQ(total->longAt("count"), 1);
    EXPECT_TRUE(server.waitForShutdown(deadlineAfter(10)));
    server.stop();
}

/**
 * @file
 * `dspcc --serve` through the real binary: spawn the server as a child
 * process, drive it over its socket with ServeClient, shut it down
 * with the protocol's own "shutdown" op, and check the exit status.
 * The in-process tier (serve_test.cc) pins the semantics; this file
 * pins the CLI wiring — flag parsing, the serve/compile mode split,
 * and a clean zero exit on protocol-initiated shutdown.
 */

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "driver/server.hh"

#include "serve_util.hh"

using namespace dsp;
using namespace dsp::serve_test;

TEST(ServeCli, ServeCompileShutdownExitsZero)
{
    std::string dir = "/tmp/dsp-serve-cli-" + std::to_string(::getpid());
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    std::string socketPath = dir + "/s.sock";

    pid_t pid = spawnServer(socketPath, {"--cache-dir=" + dir + "/cache"});
    ASSERT_GT(pid, 0);

    auto client = connectWithRetry(socketPath);
    ASSERT_NE(client, nullptr) << "server never came up";

    json::Value pong = client->call("{\"id\":1,\"op\":\"ping\"}");
    EXPECT_TRUE(pong.find("ok")->boolean);

    json::Value resp = client->call(
        "{\"id\":2,\"op\":\"compile\","
        "\"source\":\"void main() { out(6 * 7); }\"}");
    ASSERT_TRUE(resp.find("ok")->boolean);
    EXPECT_EQ(resp.find("result")
                  ->find("output")
                  ->items[0]
                  .longAt("raw"),
              42);

    // Second identical request is served from the on-disk cache the
    // CLI's --cache-dir enabled.
    json::Value warm = client->call(
        "{\"id\":3,\"op\":\"compile\","
        "\"source\":\"void main() { out(6 * 7); }\"}");
    EXPECT_EQ(warm.stringAt("cached"), "disk");

    json::Value bye = client->call("{\"id\":4,\"op\":\"shutdown\"}");
    EXPECT_TRUE(bye.find("ok")->boolean);

    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status)) << "server did not exit cleanly";
    EXPECT_EQ(WEXITSTATUS(status), 0);
    EXPECT_FALSE(std::filesystem::exists(socketPath));

    std::filesystem::remove_all(dir);
}

/**
 * @file
 * SIGTERM drain through the real binary (`ctest -L serve` and the
 * chaos tier): spawn `dspcc --serve`, load it up with pipelined
 * compiles from several clients, SIGTERM it mid-flight, and hold it
 * to the drain contract — zero in-flight requests lost (every queued
 * client gets a structured reply), requests arriving during the drain
 * get a structured "draining" refusal (never a slammed door while the
 * server lives), and the process exits 0 within the drain deadline.
 */

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "driver/server.hh"

#include "serve_util.hh"

using namespace dsp;
using namespace dsp::serve_test;

TEST(ServeDrain, SigtermCompletesInflightAndExitsZero)
{
    ScratchDir dir("serve-sigterm");
    std::string socketPath = dir.file("s.sock");

    pid_t pid = spawnServer(socketPath, {"--serve-threads=2",
                                         "--drain-deadline=15"});
    ASSERT_GT(pid, 0);
    auto probe = connectWithRetry(socketPath);
    ASSERT_NE(probe, nullptr) << "server never came up";

    // Four clients pipeline three compiles each — distinct sources,
    // so every one costs a real compile and the backlog is real.
    constexpr int kClients = 4;
    constexpr int kPerClient = 3;
    std::vector<std::unique_ptr<ServeClient>> clients;
    for (int c = 0; c < kClients; ++c) {
        clients.push_back(std::make_unique<ServeClient>(socketPath));
        for (int r = 0; r < kPerClient; ++r) {
            long long id = c * kPerClient + r;
            clients.back()->sendLine(
                compileLine(id, slowSource(2000000 + id)));
        }
    }
    // Let the server admit the backlog before the signal lands: the
    // point is draining work in flight, not an empty queue.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));

    ASSERT_EQ(::kill(pid, SIGTERM), 0);

    // The drain contract: every request sent before the signal gets
    // exactly one structured reply — completed in-flight work answers
    // "ok", anything the drain refused answers kind "draining". A
    // dropped connection (ConnectionLost) is a contract violation.
    int okCount = 0, drainingCount = 0;
    for (int c = 0; c < kClients; ++c) {
        for (int r = 0; r < kPerClient; ++r) {
            json::Value resp;
            ASSERT_NO_THROW(resp = json::parse(clients[c]->readLine()))
                << "client " << c << " lost reply " << r
                << " during drain";
            const json::Value *ok = resp.find("ok");
            ASSERT_NE(ok, nullptr);
            if (ok->boolean) {
                ++okCount;
            } else {
                EXPECT_EQ(resp.find("error")->stringAt("kind"),
                          "draining");
                ++drainingCount;
            }
        }
    }
    EXPECT_EQ(okCount + drainingCount, kClients * kPerClient);
    EXPECT_GT(okCount, 0) << "drain must complete admitted work, "
                             "not refuse everything";

    // A request sent after the drain began: a structured refusal if
    // the server is still up, ConnectionLost once it has exited —
    // never a hang, never an unstructured byte.
    try {
        json::Value late = probe->call(compileLine(9999, kSumSource));
        EXPECT_FALSE(late.find("ok")->boolean);
        EXPECT_EQ(late.find("error")->stringAt("kind"), "draining");
    } catch (const ConnectionLost &) {
        // Server already finished draining and exited: fine.
    }

    int status = 0;
    ASSERT_TRUE(waitForExit(pid, status, 15.0))
        << "server did not exit within the drain deadline";
    ASSERT_TRUE(WIFEXITED(status)) << "drain must end in exit(), "
                                      "not a crash";
    EXPECT_EQ(WEXITSTATUS(status), 0);
    EXPECT_FALSE(std::filesystem::exists(socketPath))
        << "a drained server unlinks its socket";
}

/**
 * @file
 * Seeded protocol fuzzer for dsp-serve-v1 (`ctest -L serve`, and part
 * of the asan-fast preset): hundreds of deterministic, seed-derived
 * malformed-and-valid frame sequences against a live in-process
 * server — truncated JSON, garbage bytes, oversized lines, wrong
 * types, non-object frames, pipelined valid/invalid mixes, and
 * mid-request disconnects.
 *
 * Invariants checked every iteration:
 *  - the server never aborts (every later iteration still connects);
 *  - every syntactically complete request line gets EXACTLY one
 *    structured JSON reply (ids, where the request carried a numeric
 *    one, must all come back — a dropped or duplicated reply shows up
 *    as a multiset mismatch);
 *  - an oversized line gets one "protocol" reply and then EOF;
 *  - file descriptors do not leak across the whole run
 *    (/proc/self/fd is flat once EOFs settle).
 *
 * Iteration count scales with DSP_FUZZ_ITERS (default 400); the byte
 * streams depend only on the seed, never on time or address layout.
 */

#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "driver/server.hh"

#include "serve_util.hh"

using namespace dsp;
using namespace dsp::serve_test;

namespace
{

/** xorshift64: tiny, fast, and fully deterministic across platforms —
 *  the whole point is that a failing seed replays exactly. */
struct Rng
{
    std::uint64_t s;

    explicit Rng(std::uint64_t seed) : s(seed ? seed : 0x5eedULL) {}

    std::uint64_t
    next()
    {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        return s;
    }

    std::uint32_t
    below(std::uint32_t n)
    {
        return static_cast<std::uint32_t>(next() % n);
    }

    bool chance(std::uint32_t oneIn) { return below(oneIn) == 0; }
};

/** One generated frame plus its oracle: does the server owe a reply,
 *  and if the frame carried a usable numeric id, which one. */
struct Frame
{
    std::string bytes;        ///< includes the trailing newline if any
    bool expectsReply = true; ///< false only for empty lines
    bool hasId = false;       ///< a numeric id the reply must echo
    long long id = 0;
    bool oversized = false; ///< reply-then-close, rest of stream dead
};

Frame
makeFrame(Rng &rng, long long id, std::size_t maxRequestBytes)
{
    Frame f;
    f.hasId = true;
    f.id = id;
    switch (rng.below(10)) {
    case 0: // valid ping
        f.bytes = "{\"id\":" + std::to_string(id) + ",\"op\":\"ping\"}\n";
        return f;
    case 1: // valid stats
        f.bytes =
            "{\"id\":" + std::to_string(id) + ",\"op\":\"stats\"}\n";
        return f;
    case 2: // valid compile (small source pool: most hit L1)
        f.bytes = compileLine(id, distinctSource(rng.below(4))) + "\n";
        return f;
    case 3: { // truncated JSON: any proper prefix fails to parse
        std::string whole =
            "{\"id\":" + std::to_string(id) + ",\"op\":\"ping\"}";
        std::size_t cut = 1 + rng.below(
            static_cast<std::uint32_t>(whole.size() - 1));
        f.bytes = whole.substr(0, cut) + "\n";
        f.hasId = false; // unparseable: the reply cannot echo it
        return f;
    }
    case 4: { // printable garbage (newline-free, under the cap)
        std::size_t len = 1 + rng.below(200);
        std::string g;
        for (std::size_t i = 0; i < len; ++i)
            g += static_cast<char>(' ' + rng.below(95));
        f.bytes = g + "\n";
        f.hasId = false; // may or may not parse; id never echoes
        f.expectsReply = !g.empty();
        return f;
    }
    case 5: { // parseable but not an object
        static const char *kScalars[] = {"42", "[1,2,3]", "\"hello\"",
                                         "true", "null"};
        f.bytes = std::string(kScalars[rng.below(5)]) + "\n";
        f.hasId = false;
        return f;
    }
    case 6: // unknown op
        f.bytes = "{\"id\":" + std::to_string(id) +
                  ",\"op\":\"frobnicate\"}\n";
        return f;
    case 7: { // wrong-typed fields on a real op
        static const char *kBad[] = {
            "\"verify_mc\":\"true\"", "\"resilient\":1",
            "\"input\":\"nope\"", "\"mode\":\"sideways\""};
        f.bytes = compileLine(id, distinctSource(rng.below(4)),
                              kBad[rng.below(4)]) +
                  "\n";
        return f;
    }
    case 8: // string id: structurally fine, but ids must be numeric
        f.bytes = "{\"id\":\"nope\",\"op\":\"ping\"}\n";
        f.hasId = false;
        return f;
    default: { // oversized line: one reply, then the stream is dead
        f.bytes = "{\"id\":" + std::to_string(id) + ",\"op\":\"ping\"," +
                  "\"pad\":\"" +
                  std::string(maxRequestBytes + 100, 'x') + "\"}\n";
        f.hasId = false;
        f.oversized = true;
        return f;
    }
    }
}

} // namespace

TEST(ServeFuzz, DeterministicProtocolFuzz)
{
    ScratchDir dir("serve-fuzz");
    ServeOptions opts;
    opts.socketPath = dir.file("s.sock");
    opts.threads = 2;
    opts.maxPending = 4;     // sheds are part of the fuzzed surface
    opts.maxRequestBytes = 300;
    opts.writeTimeoutSeconds = 5.0;
    Server server(opts);
    server.start();

    long iters = 400;
    if (const char *env = std::getenv("DSP_FUZZ_ITERS"))
        iters = std::max(1L, std::atol(env));
    std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
    if (const char *env = std::getenv("DSP_FUZZ_SEED"))
        seed = std::strtoull(env, nullptr, 0);
    Rng rng(seed);

    // Steady-state fd baseline: one connection has come and gone.
    {
        ServeClient warm(opts.socketPath);
        warm.call("{\"op\":\"ping\"}");
    }
    int fdsBefore = countOpenFds();

    long long nextId = 1;
    for (long iter = 0; iter < iters; ++iter) {
        SCOPED_TRACE("iter " + std::to_string(iter) + " seed " +
                     std::to_string(seed));
        RawConn conn(opts.socketPath);
        ASSERT_TRUE(conn.ok()) << "server must keep accepting";

        if (rng.chance(8)) {
            // Abuse mode: bytes (often a partial frame) then an
            // abrupt close, sometimes without ever reading. The
            // server owes nothing but its life.
            std::string bytes;
            int n = 1 + rng.below(3);
            for (int i = 0; i < n; ++i)
                bytes += makeFrame(rng, nextId++, opts.maxRequestBytes)
                             .bytes;
            if (rng.chance(2) && !bytes.empty())
                bytes.resize(1 + rng.below(static_cast<std::uint32_t>(
                                 bytes.size()))); // mid-request cut
            conn.sendRaw(bytes);
            conn.closeNow();
            continue;
        }

        // Oracle mode: build a pipelined mix, tally what is owed.
        int frames = 1 + rng.below(6);
        std::string stream;
        long expectedReplies = 0;
        std::map<long long, int> expectedIds;
        bool closed = false;
        for (int i = 0; i < frames && !closed; ++i) {
            if (rng.chance(10)) {
                stream += "\n"; // empty line: skipped, no reply
                continue;
            }
            Frame f = makeFrame(rng, nextId++, opts.maxRequestBytes);
            stream += f.bytes;
            if (f.expectsReply)
                ++expectedReplies;
            if (f.hasId)
                ++expectedIds[f.id];
            closed = f.oversized;
        }

        // Send in random chunks so frames split across recv() calls.
        std::size_t off = 0;
        while (off < stream.size()) {
            std::size_t n = 1 + rng.below(static_cast<std::uint32_t>(
                                stream.size() - off));
            if (!conn.sendRaw(stream.substr(off, n)))
                break; // server already closed on us (oversized race)
            off += n;
        }

        // Collect exactly the owed replies; every one is JSON with an
        // "ok" boolean, and the numeric ids come back as a multiset.
        std::map<long long, int> gotIds;
        for (long i = 0; i < expectedReplies; ++i) {
            std::string line;
            ASSERT_TRUE(conn.recvLine(line))
                << "owed " << expectedReplies << " replies, got " << i;
            json::Value resp;
            ASSERT_NO_THROW(resp = json::parse(line))
                << "unparseable reply: " << line;
            const json::Value *ok = resp.find("ok");
            ASSERT_NE(ok, nullptr) << line;
            ASSERT_TRUE(ok->isBool()) << line;
            const json::Value *rid = resp.find("id");
            if (rid != nullptr && rid->isNumber())
                ++gotIds[static_cast<long long>(rid->number)];
        }
        for (const auto &[id, n] : expectedIds)
            EXPECT_EQ(gotIds[id], n) << "reply multiset mismatch for id "
                                     << id;
        if (closed) {
            EXPECT_TRUE(conn.atEof())
                << "an oversized line must close the connection";
        }
    }

    // The fd count settles back to the baseline (EOF delivery to the
    // readers is asynchronous, so poke until it converges).
    int fdsAfter = countOpenFds();
    for (int tries = 0; tries < 200 && fdsAfter > fdsBefore + 4;
         ++tries) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        ServeClient c(opts.socketPath);
        c.call("{\"op\":\"ping\"}");
        fdsAfter = countOpenFds();
    }
    EXPECT_LE(fdsAfter, fdsBefore + 4)
        << iters << " fuzz connections must not leak fds";

    // And after all of it, the server still compiles.
    ServeClient probe(opts.socketPath);
    expectSum(probe.call(compileLine(999999, kSumSource)), 45);
    json::Value stats = probe.call("{\"op\":\"stats\"}");
    EXPECT_GE(counterOf(stats, "serve.requests"), 1);
    server.stop();
}

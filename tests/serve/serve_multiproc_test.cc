/**
 * @file
 * The disk cache's multi-process story under real concurrency
 * (`ctest -L serve` and the chaos tier): two `dspcc --serve`
 * processes sharing one --cache-dir must never serve a torn entry
 * while racing writers, and a server SIGKILLed mid-load must leave a
 * cache directory a warm restart can serve hits from — the atomic
 * temp+rename store and the corruption-is-a-miss load are what these
 * tests hold to account end to end.
 */

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "driver/server.hh"

#include "serve_util.hh"

using namespace dsp;
using namespace dsp::serve_test;

TEST(ServeMultiProc, ConcurrentWritersShareOneCacheDir)
{
    ScratchDir dir("serve-mp");
    std::string cacheDir = dir.file("cache");
    std::string sockA = dir.file("a.sock");
    std::string sockB = dir.file("b.sock");

    pid_t pidA = spawnServer(sockA, {"--cache-dir=" + cacheDir,
                                     "--serve-threads=2"});
    pid_t pidB = spawnServer(sockB, {"--cache-dir=" + cacheDir,
                                     "--serve-threads=2"});
    ASSERT_GT(pidA, 0);
    ASSERT_GT(pidB, 0);
    ASSERT_NE(connectWithRetry(sockA), nullptr);
    ASSERT_NE(connectWithRetry(sockB), nullptr);

    // Both processes hammer the same 8 request keys concurrently:
    // every key gets raced into the shared directory by two writers,
    // and every reply must be a well-formed success — a torn or
    // half-renamed entry would surface as a parse failure or a wrong
    // output word.
    constexpr int kSources = 8;
    constexpr int kPasses = 2;
    std::atomic<int> okCount{0}, failures{0};
    auto hammer = [&](const std::string &sock, int stripe) {
        try {
            ServeClient client(sock);
            for (int p = 0; p < kPasses; ++p) {
                for (int s = 0; s < kSources; ++s) {
                    int k = (s + stripe) % kSources;
                    json::Value resp = client.call(compileLine(
                        stripe * 1000 + p * 100 + k,
                        distinctSource(k)));
                    const json::Value *ok = resp.find("ok");
                    if (ok && ok->boolean &&
                        resp.find("result")
                                ->find("output")
                                ->items[0]
                                .longAt("raw") == k + 1)
                        ++okCount;
                    else
                        ++failures;
                }
            }
        } catch (const std::exception &) {
            ++failures;
        }
    };
    std::vector<std::thread> threads;
    for (int t = 0; t < 2; ++t) {
        threads.emplace_back(hammer, sockA, t);
        threads.emplace_back(hammer, sockB, t + 2);
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(okCount.load(), 4 * kPasses * kSources);

    // With the dust settled, every key is a disk hit from BOTH
    // processes — each can serve entries the other stored.
    for (const std::string &sock : {sockA, sockB}) {
        ServeClient client(sock);
        for (int k = 0; k < kSources; ++k) {
            json::Value resp = client.call(
                compileLine(5000 + k, distinctSource(k)));
            ASSERT_TRUE(resp.find("ok")->boolean);
            EXPECT_EQ(resp.stringAt("cached"), "disk")
                << "key " << k << " via " << sock;
        }
    }

    for (pid_t pid : {pidA, pidB}) {
        std::string sock = pid == pidA ? sockA : sockB;
        ServeClient client(sock);
        client.call("{\"op\":\"shutdown\"}");
        int status = 0;
        ASSERT_TRUE(waitForExit(pid, status, 10.0));
        ASSERT_TRUE(WIFEXITED(status));
        EXPECT_EQ(WEXITSTATUS(status), 0);
    }
}

TEST(ServeMultiProc, Kill9UnderLoadThenWarmRestartServesDiskHits)
{
    ScratchDir dir("serve-kill9");
    std::string cacheDir = dir.file("cache");
    std::string socketPath = dir.file("s.sock");

    pid_t pid = spawnServer(socketPath, {"--cache-dir=" + cacheDir,
                                         "--serve-threads=2"});
    ASSERT_GT(pid, 0);
    ASSERT_NE(connectWithRetry(socketPath), nullptr);

    // Clients churn compiles over a fixed key set until the server is
    // SIGKILLed out from under them mid-store. Lost connections are
    // the expected ending; what is NOT acceptable is a client abort
    // or a reply that is neither success nor structured error.
    constexpr int kSources = 6;
    std::atomic<bool> serverUp{true};
    std::atomic<int> badReplies{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 3; ++t) {
        threads.emplace_back([&, t] {
            long long id = t * 100000;
            while (serverUp.load()) {
                try {
                    ServeClient client(socketPath);
                    for (;;) {
                        ++id;
                        json::Value resp = client.call(compileLine(
                            id, distinctSource(id % kSources)));
                        const json::Value *ok = resp.find("ok");
                        if (ok == nullptr)
                            ++badReplies;
                    }
                } catch (const UserError &) {
                    // ConnectionLost (or a mid-kill parse of a torn
                    // line): back off, then reconnect or wind down.
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(5));
                }
            }
        });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    ASSERT_EQ(::kill(pid, SIGKILL), 0);
    int status = 0;
    ASSERT_TRUE(waitForExit(pid, status, 10.0));
    ASSERT_TRUE(WIFSIGNALED(status));
    EXPECT_EQ(WTERMSIG(status), SIGKILL);
    serverUp.store(false);
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(badReplies.load(), 0);

    // Warm restart over the survivor directory: pass one may mix disk
    // hits with recompiles (keys mid-store when the SIGKILL landed
    // read as misses), but every reply must succeed — a half-written
    // entry must never poison a request. Pass two is all disk hits.
    pid = spawnServer(socketPath, {"--cache-dir=" + cacheDir});
    ASSERT_GT(pid, 0);
    auto client = connectWithRetry(socketPath);
    ASSERT_NE(client, nullptr) << "warm restart failed";
    for (int k = 0; k < kSources; ++k) {
        json::Value resp =
            client->call(compileLine(900 + k, distinctSource(k)));
        ASSERT_TRUE(resp.find("ok")->boolean)
            << "key " << k << " after warm restart";
    }
    for (int k = 0; k < kSources; ++k) {
        json::Value resp =
            client->call(compileLine(950 + k, distinctSource(k)));
        ASSERT_TRUE(resp.find("ok")->boolean);
        EXPECT_EQ(resp.stringAt("cached"), "disk")
            << "second pass must be all L2 hits (key " << k << ")";
    }

    client->call("{\"op\":\"shutdown\"}");
    ASSERT_TRUE(waitForExit(pid, status, 10.0));
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
}

/**
 * @file
 * The compile-service tier (`ctest -L serve`): in-process Server +
 * ServeClient over a real unix-domain socket.
 *
 * Pins the hard guarantees of DESIGN.md §13: protocol conformance,
 * two-level caching (stampedes collapse to one compile, the disk
 * level survives restarts and tolerates corruption), per-request
 * fault isolation (one injected fault answers one client and is gone
 * — the no-negative-caching rule end to end), degraded results are
 * never cached, and a blown per-request deadline becomes a structured
 * "timeout" error after its retry, never a dead server.
 *
 * PR 9 adds the overload-safety guarantees of DESIGN.md §14:
 * admission control with an exact pending bound and structured
 * "overloaded" sheds, the drain state machine, and the
 * slow/abusive-client protections (request-line cap, idle timeout,
 * bounded writes).
 */

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include <gtest/gtest.h>

#include "driver/disk_cache.hh"
#include "driver/server.hh"
#include "suite/suite.hh"
#include "support/fault_injection.hh"

#include "serve_util.hh"

using namespace dsp;
using namespace dsp::serve_test;

TEST(Serve, PingStatsShutdownProtocol)
{
    ScratchDir dir("serve-ping");
    ServeOptions opts;
    opts.socketPath = dir.file("s.sock");
    Server server(opts);
    server.start();

    ServeClient client(opts.socketPath);
    json::Value pong = client.call("{\"id\":7,\"op\":\"ping\"}");
    EXPECT_EQ(pong.longAt("id"), 7);
    EXPECT_TRUE(pong.find("ok")->boolean);
    EXPECT_TRUE(pong.find("pong")->boolean);

    json::Value stats = client.call("{\"id\":8,\"op\":\"stats\"}");
    EXPECT_TRUE(stats.find("ok")->boolean);
    EXPECT_EQ(stats.find("stats")->stringAt("schema"), "dsp-stats-v2");
    EXPECT_GE(counterOf(stats, "serve.requests"), 1);

    json::Value bye = client.call("{\"id\":9,\"op\":\"shutdown\"}");
    EXPECT_TRUE(bye.find("ok")->boolean);
    EXPECT_TRUE(server.waitForShutdown([] { return true; }));
    server.stop();
    EXPECT_FALSE(server.running());
    // The socket file is gone after a clean stop.
    EXPECT_FALSE(std::filesystem::exists(opts.socketPath));
}

TEST(Serve, ProtocolErrorsAreStructuredAndIsolated)
{
    ScratchDir dir("serve-proto");
    ServeOptions opts;
    opts.socketPath = dir.file("s.sock");
    Server server(opts);
    server.start();

    ServeClient client(opts.socketPath);
    json::Value bad = client.call("this is not json");
    EXPECT_FALSE(bad.find("ok")->boolean);
    EXPECT_EQ(bad.find("error")->stringAt("kind"), "protocol");

    json::Value unknownOp =
        client.call("{\"id\":1,\"op\":\"frobnicate\"}");
    EXPECT_EQ(unknownOp.find("error")->stringAt("kind"), "protocol");

    json::Value noSource = client.call("{\"id\":2,\"op\":\"compile\"}");
    EXPECT_EQ(noSource.find("error")->stringAt("kind"), "protocol");

    json::Value badMode = client.call(compileLine(
        3, kSumSource, "\"mode\":\"sideways\""));
    EXPECT_EQ(badMode.find("error")->stringAt("kind"), "protocol");

    json::Value badSource =
        client.call(compileLine(4, "int main( {{{"));
    EXPECT_FALSE(badSource.find("ok")->boolean);
    EXPECT_EQ(badSource.find("error")->stringAt("kind"), "user");

    // Mistyped booleans are protocol errors, not silently-defaulted
    // flags.
    json::Value badBool = client.call(compileLine(
        5, kSumSource, "\"verify_mc\":\"true\""));
    EXPECT_EQ(badBool.find("error")->stringAt("kind"), "protocol");
    json::Value badBool2 = client.call(compileLine(
        6, kSumSource, "\"resilient\":1"));
    EXPECT_EQ(badBool2.find("error")->stringAt("kind"), "protocol");

    // None of that hurt the connection or the server.
    expectSum(client.call(compileLine(7, kSumSource)), 45);
    server.stop();
}

TEST(Serve, DisconnectedClientsAreReclaimed)
{
    // Regression: the server used to keep every Conn (and its fd) and
    // one unjoined reader thread per connection until stop(), so a
    // long-lived daemon exhausted RLIMIT_NOFILE after a bounded number
    // of clients. Disconnected clients must be reclaimed while the
    // server runs.
    ScratchDir dir("serve-reclaim");
    ServeOptions opts;
    opts.socketPath = dir.file("s.sock");
    Server server(opts);
    server.start();

    // Warm one connection first so steady-state fds are accounted for.
    {
        ServeClient warm(opts.socketPath);
        warm.call("{\"op\":\"ping\"}");
    }
    int before = countOpenFds();

    // A daemon's life: many clients connect, talk once, disconnect.
    constexpr int kClients = 64;
    for (int i = 0; i < kClients; ++i) {
        ServeClient c(opts.socketPath);
        c.call("{\"op\":\"ping\"}");
    }

    // Reaping happens on the accept path, so poke the server with
    // fresh connections until the count settles (EOF delivery to the
    // readers is asynchronous). Leaked conns can never be reclaimed,
    // so under the old behavior this loop cannot converge.
    int after = countOpenFds();
    for (int tries = 0; tries < 100 && after > before + 4; ++tries) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        ServeClient c(opts.socketPath);
        c.call("{\"op\":\"ping\"}");
        after = countOpenFds();
    }
    EXPECT_LE(after, before + 4)
        << kClients << " sequential clients must not accumulate fds";

    // And the server still serves.
    ServeClient c(opts.socketPath);
    expectSum(c.call(compileLine(1, kSumSource)), 45);
    server.stop();
}

TEST(Serve, TwoLevelCachingAndRestartSurvival)
{
    ScratchDir dir("serve-cache");
    ServeOptions opts;
    opts.socketPath = dir.file("s.sock");
    opts.cacheDir = dir.file("cache");

    {
        Server server(opts);
        server.start();
        ServeClient client(opts.socketPath);

        json::Value first = client.call(compileLine(1, kSumSource));
        expectSum(first, 45);
        EXPECT_EQ(first.stringAt("cached"), "none");

        json::Value second = client.call(compileLine(2, kSumSource));
        expectSum(second, 45);
        EXPECT_EQ(second.stringAt("cached"), "disk");

        // A different request key (different input) misses both
        // levels but reuses the compiled artifact (L1).
        json::Value other = client.call(compileLine(
            3, kSumSource, "\"input\":[1,2,3]"));
        expectSum(other, 45);
        EXPECT_EQ(other.stringAt("cached"), "memory");
        server.stop();
    }

    // A fresh server process over the same cache dir serves
    // yesterday's entry without compiling.
    {
        Server server(opts);
        server.start();
        ServeClient client(opts.socketPath);
        json::Value warm = client.call(compileLine(4, kSumSource));
        expectSum(warm, 45);
        EXPECT_EQ(warm.stringAt("cached"), "disk");

        json::Value stats = client.call("{\"op\":\"stats\"}");
        EXPECT_EQ(counterOf(stats, "serve.cache.disk.hit"), 1);
        EXPECT_EQ(stats.find("stats")->longAt("cache_compiles"), 0);
        server.stop();
    }
}

TEST(Serve, StampedeCompilesExactlyOnce)
{
    ScratchDir dir("serve-stampede");
    ServeOptions opts;
    opts.socketPath = dir.file("s.sock");
    // No disk cache: every request must reach L1, where the stampede
    // collapses to one compile.
    Server server(opts);
    server.start();

    constexpr int kClients = 16;
    std::vector<std::thread> threads;
    std::atomic<int> okCount{0};
    for (int c = 0; c < kClients; ++c) {
        threads.emplace_back([&, c] {
            ServeClient client(opts.socketPath);
            json::Value resp =
                client.call(compileLine(c, kSumSource));
            const json::Value *ok = resp.find("ok");
            if (ok && ok->boolean &&
                resp.find("result")->find("output")->items[0].longAt(
                    "raw") == 45)
                ++okCount;
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(okCount.load(), kClients);

    ServeClient client(opts.socketPath);
    json::Value stats = client.call("{\"op\":\"stats\"}");
    EXPECT_EQ(stats.find("stats")->longAt("cache_compiles"), 1);
    EXPECT_EQ(counterOf(stats, "compile.cache.miss"), 1);
    EXPECT_EQ(counterOf(stats, "compile.cache.hit"), kClients - 1);
    server.stop();
}

TEST(Serve, InjectedFaultAnswersOneClientThenHeals)
{
    ScratchDir dir("serve-fault");
    ServeOptions opts;
    opts.socketPath = dir.file("s.sock");
    opts.cacheDir = dir.file("cache");
    Server server(opts);
    server.start();

    // One-shot transient fault in the backend: the first compile of
    // any function throws InjectedFault, then the site disarms.
    FaultPlan plan;
    plan.arm("backend.regalloc");
    ScopedFaultPlan scope(plan);

    ServeClient client(opts.socketPath);
    json::Value failed = client.call(compileLine(1, kSumSource));
    EXPECT_FALSE(failed.find("ok")->boolean);
    EXPECT_EQ(failed.find("error")->stringAt("kind"), "internal");

    // The acceptance gate: an immediate identical retry succeeds —
    // the failure poisoned neither cache level.
    json::Value retry = client.call(compileLine(2, kSumSource));
    expectSum(retry, 45);
    EXPECT_EQ(retry.stringAt("cached"), "none");

    json::Value warm = client.call(compileLine(3, kSumSource));
    expectSum(warm, 45);
    EXPECT_EQ(warm.stringAt("cached"), "disk");

    json::Value stats = client.call("{\"op\":\"stats\"}");
    EXPECT_EQ(counterOf(stats, "compile.cache.failure"), 1);
    server.stop();
}

TEST(Serve, FailingStampedeNeverPoisonsLaterRequests)
{
    ScratchDir dir("serve-chaos");
    ServeOptions opts;
    opts.socketPath = dir.file("s.sock");
    Server server(opts);
    server.start();

    FaultPlan plan;
    plan.arm("backend.regalloc");
    ScopedFaultPlan scope(plan);

    // A herd of identical requests races the one-shot fault: waiters
    // that joined the faulting attempt fail with it, requests that
    // arrive after the erase compile cleanly. Either way every client
    // gets exactly one structured answer and the server stays up.
    constexpr int kClients = 8;
    std::vector<std::thread> threads;
    std::atomic<int> answered{0};
    for (int c = 0; c < kClients; ++c) {
        threads.emplace_back([&, c] {
            ServeClient client(opts.socketPath);
            json::Value resp =
                client.call(compileLine(c, kSumSource));
            if (resp.find("ok") != nullptr)
                ++answered;
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(answered.load(), kClients);

    // The fault is spent and nothing was negatively cached.
    ServeClient client(opts.socketPath);
    expectSum(client.call(compileLine(99, kSumSource)), 45);
    server.stop();
}

TEST(Serve, DegradedCompileServedButNeverCached)
{
    ScratchDir dir("serve-degraded");
    ServeOptions opts;
    opts.socketPath = dir.file("s.sock");
    opts.cacheDir = dir.file("cache");
    Server server(opts);
    server.start();

    FaultPlan plan;
    plan.arm("backend.regalloc");
    ScopedFaultPlan scope(plan);

    ServeClient client(opts.socketPath);
    // resilient: the injected fault degrades down the single-bank
    // ladder instead of failing.
    json::Value degraded = client.call(compileLine(
        1, kSumSource, "\"resilient\":true"));
    expectSum(degraded, 45);
    EXPECT_TRUE(degraded.find("result")->find("degraded")->boolean);
    EXPECT_FALSE(
        degraded.find("result")->find("degradations")->items.empty());

    // The degraded artifact was dropped from L1 and never stored to
    // L2: the identical request recompiles (now at full strength,
    // the one-shot fault being spent) and is NOT degraded.
    json::Value clean = client.call(compileLine(
        2, kSumSource, "\"resilient\":true"));
    expectSum(clean, 45);
    EXPECT_EQ(clean.stringAt("cached"), "none");
    EXPECT_FALSE(clean.find("result")->find("degraded")->boolean);

    // The clean result IS cached.
    json::Value warm = client.call(compileLine(
        3, kSumSource, "\"resilient\":true"));
    EXPECT_EQ(warm.stringAt("cached"), "disk");

    json::Value stats = client.call("{\"op\":\"stats\"}");
    EXPECT_EQ(counterOf(stats, "serve.degraded"), 1);
    server.stop();
}

TEST(Serve, TimeoutIsStructuredErrorAfterRetry)
{
    ScratchDir dir("serve-timeout");
    ServeOptions opts;
    opts.socketPath = dir.file("s.sock");
    // A deadline that has always already passed: attempt 0 rethrows
    // for the pool's retry, attempt 1 answers with the timeout error.
    opts.requestTimeoutSeconds = 1e-9;
    opts.requestRetries = 1;
    Server server(opts);
    server.start();

    ServeClient client(opts.socketPath);
    json::Value resp = client.call(compileLine(1, kSumSource));
    EXPECT_FALSE(resp.find("ok")->boolean);
    EXPECT_EQ(resp.find("error")->stringAt("kind"), "timeout");

    // Control ops carry no deadline check, so the server remains
    // observable even when every compile times out.
    json::Value stats = client.call("{\"op\":\"stats\"}");
    EXPECT_TRUE(stats.find("ok")->boolean);
    EXPECT_EQ(counterOf(stats, "serve.timeouts"), 1);
    EXPECT_EQ(counterOf(stats, "serve.retries"), 1);
    server.stop();
}

TEST(Serve, PipelinedRequestsCorrelateById)
{
    ScratchDir dir("serve-pipeline");
    ServeOptions opts;
    opts.socketPath = dir.file("s.sock");
    Server server(opts);
    server.start();

    ServeClient client(opts.socketPath);
    // Two pipelined requests; responses may come back in either order
    // (they run concurrently on the pool) — correlate by id.
    client.sendLine(compileLine(101, kSumSource));
    client.sendLine("{\"id\":102,\"op\":\"ping\"}");
    bool saw101 = false, saw102 = false;
    for (int i = 0; i < 2; ++i) {
        json::Value resp = json::parse(client.readLine());
        long id = resp.longAt("id");
        EXPECT_TRUE(resp.find("ok")->boolean);
        if (id == 101)
            saw101 = true;
        if (id == 102)
            saw102 = true;
    }
    EXPECT_TRUE(saw101);
    EXPECT_TRUE(saw102);
    server.stop();
}

TEST(Serve, ServerSurvivesCorruptDiskEntry)
{
    ScratchDir dir("serve-corrupt");
    ServeOptions opts;
    opts.socketPath = dir.file("s.sock");
    opts.cacheDir = dir.file("cache");
    Server server(opts);
    server.start();

    ServeClient client(opts.socketPath);
    expectSum(client.call(compileLine(1, kSumSource)), 45);

    // Garble the one entry the request stored.
    int entries = 0;
    for (const auto &e :
         std::filesystem::directory_iterator(opts.cacheDir)) {
        std::ofstream out(e.path(), std::ios::trunc);
        out << "not a cache entry";
        ++entries;
    }
    ASSERT_EQ(entries, 1);

    // Corruption is a miss: the request recompiles, succeeds, and
    // re-stores a good entry over the garbage.
    json::Value resp = client.call(compileLine(2, kSumSource));
    expectSum(resp, 45);
    EXPECT_EQ(resp.stringAt("cached"), "memory");

    json::Value warm = client.call(compileLine(3, kSumSource));
    EXPECT_EQ(warm.stringAt("cached"), "disk");

    json::Value stats = client.call("{\"op\":\"stats\"}");
    EXPECT_EQ(counterOf(stats, "serve.cache.disk.bad"), 1);
    server.stop();
}

// ---------------------------------------------------------------------
// Overload safety (DESIGN.md §14): admission control, drain, and
// slow/abusive-client protection
// ---------------------------------------------------------------------

TEST(Serve, OverloadShedsWithStructuredRepliesNeverDrops)
{
    // The acceptance gate for admission control: 64 clients against 2
    // workers and an 8-deep budget. Every request must get exactly one
    // structured reply (ok or overloaded), no connection may be
    // dropped, and the admitted depth must never exceed the budget.
    ScratchDir dir("serve-overload");
    ServeOptions opts;
    opts.socketPath = dir.file("s.sock");
    opts.threads = 2;
    opts.maxPending = 8;
    Server server(opts);
    server.start();

    constexpr int kClients = 64;
    constexpr int kPerClient = 2;
    std::atomic<int> okCount{0}, shedCount{0}, otherCount{0},
        badRetryHint{0}, dropped{0};
    std::vector<std::thread> threads;
    for (int c = 0; c < kClients; ++c) {
        threads.emplace_back([&, c] {
            try {
                ServeClient client(opts.socketPath);
                // Pipeline the burst first so arrivals overlap.
                for (int r = 0; r < kPerClient; ++r) {
                    long long id = c * kPerClient + r;
                    client.sendLine(
                        compileLine(id, distinctSource(id)));
                }
                for (int r = 0; r < kPerClient; ++r) {
                    json::Value resp = json::parse(client.readLine());
                    const json::Value *ok = resp.find("ok");
                    if (ok && ok->boolean) {
                        ++okCount;
                        continue;
                    }
                    const json::Value *err = resp.find("error");
                    if (err && err->stringAt("kind") == "overloaded") {
                        ++shedCount;
                        if (err->longAt("retry_after_ms", -1) < 1)
                            ++badRetryHint;
                    } else {
                        ++otherCount;
                    }
                }
            } catch (const std::exception &) {
                ++dropped;
            }
        });
    }
    for (std::thread &t : threads)
        t.join();

    EXPECT_EQ(dropped.load(), 0) << "no client may lose its connection";
    EXPECT_EQ(otherCount.load(), 0)
        << "only ok/overloaded replies are acceptable here";
    EXPECT_EQ(okCount.load() + shedCount.load(), kClients * kPerClient)
        << "exactly one reply per request";
    EXPECT_GT(shedCount.load(), 0)
        << "this herd must overrun an 8-deep budget";
    EXPECT_GT(okCount.load(), 0) << "shedding everything is not control";
    EXPECT_EQ(badRetryHint.load(), 0)
        << "every overloaded reply carries a positive retry_after_ms";

    ServeClient probe(opts.socketPath);
    json::Value stats = probe.call("{\"op\":\"stats\"}");
    EXPECT_EQ(counterOf(stats, "serve.shed"), shedCount.load());
    long peak = counterOf(stats, "serve.queue_depth.peak");
    EXPECT_GE(peak, 1);
    EXPECT_LE(peak, static_cast<long>(opts.maxPending))
        << "admission is an exact bound, not a suggestion";
    // After the storm the server still serves.
    expectSum(probe.call(compileLine(9999, kSumSource)), 45);
    server.stop();
}

TEST(Serve, PerConnectionBudgetShedsPipelinedFlood)
{
    // One pipelining client must not monopolize the server-wide
    // budget: its own 1-deep budget sheds the burst while a second
    // connection is untouched.
    ScratchDir dir("serve-conncap");
    ServeOptions opts;
    opts.socketPath = dir.file("s.sock");
    opts.threads = 1;
    opts.maxPendingPerConn = 1;
    Server server(opts);
    server.start();

    ServeClient client(opts.socketPath);
    constexpr int kBurst = 6;
    client.sendLine(compileLine(0, slowSource()));
    for (int i = 1; i < kBurst; ++i)
        client.sendLine(compileLine(i, distinctSource(i)));

    int ok = 0, shed = 0;
    for (int i = 0; i < kBurst; ++i) {
        json::Value resp = json::parse(client.readLine());
        if (resp.find("ok")->boolean) {
            ++ok;
        } else {
            EXPECT_EQ(resp.find("error")->stringAt("kind"),
                      "overloaded");
            ++shed;
        }
    }
    EXPECT_EQ(ok + shed, kBurst);
    EXPECT_GE(ok, 1);
    EXPECT_GE(shed, 1)
        << "a 1-deep per-connection budget must shed a 6-deep burst";

    ServeClient other(opts.socketPath);
    expectSum(other.call(compileLine(100, kSumSource)), 45);
    server.stop();
}

TEST(Serve, DrainCompletesInflightRefusesNewThenLatches)
{
    ScratchDir dir("serve-drain");
    ServeOptions opts;
    opts.socketPath = dir.file("s.sock");
    opts.threads = 1;
    Server server(opts);
    server.start();

    // Put one slow compile in flight and wait until it is admitted.
    ServeClient worker(opts.socketPath);
    worker.sendLine(compileLine(1, slowSource()));
    for (int i = 0; i < 400 && server.pendingRequests() == 0; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_GT(server.pendingRequests(), 0);

    ServeClient control(opts.socketPath);
    json::Value ack = control.call("{\"id\":2,\"op\":\"drain\"}");
    EXPECT_TRUE(ack.find("ok")->boolean);
    EXPECT_TRUE(ack.find("draining")->boolean);
    // The ack is written before the state flips; settle briefly.
    for (int i = 0; i < 200 && !server.draining(); ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_TRUE(server.draining());

    // New work on an existing connection: structured refusal, not a
    // slammed door.
    control.sendLine(compileLine(3, kSumSource));
    json::Value refused = json::parse(control.readLine());
    EXPECT_FALSE(refused.find("ok")->boolean);
    EXPECT_EQ(refused.find("error")->stringAt("kind"), "draining");

    // New connections: refused outright (the listener is closed).
    EXPECT_THROW(ServeClient{opts.socketPath}, ConnectionLost);

    // The in-flight request is NOT lost: it completes with its real
    // answer...
    json::Value done = json::parse(worker.readLine());
    EXPECT_TRUE(done.find("ok")->boolean)
        << "drain must complete in-flight work";
    EXPECT_EQ(done.longAt("id"), 1);

    // ...and its retirement fires the shutdown latch on its own.
    EXPECT_TRUE(server.waitForShutdown(deadlineAfter(20.0)));
    server.stop();
    EXPECT_FALSE(std::filesystem::exists(opts.socketPath));
}

TEST(Serve, DrainOnIdleServerLatchesImmediately)
{
    ScratchDir dir("serve-drain-idle");
    ServeOptions opts;
    opts.socketPath = dir.file("s.sock");
    Server server(opts);
    server.start();

    ServeClient client(opts.socketPath);
    json::Value ack = client.call("{\"id\":1,\"op\":\"drain\"}");
    EXPECT_TRUE(ack.find("ok")->boolean);
    // Nothing in flight: the drain is already complete.
    EXPECT_TRUE(server.waitForShutdown(deadlineAfter(10.0)));
    server.stop();
    EXPECT_FALSE(std::filesystem::exists(opts.socketPath));
}

TEST(Serve, OverlongRequestLineGetsReplyThenClose)
{
    ScratchDir dir("serve-longline");
    ServeOptions opts;
    opts.socketPath = dir.file("s.sock");
    opts.maxRequestBytes = 256;
    Server server(opts);
    server.start();

    // A complete-but-overlong line: one structured protocol error,
    // then the connection is closed.
    {
        RawConn conn(opts.socketPath);
        ASSERT_TRUE(conn.ok());
        ASSERT_TRUE(conn.sendLine("{\"id\":1,\"op\":\"ping\",\"pad\":\"" +
                                  std::string(512, 'x') + "\"}"));
        std::string line;
        ASSERT_TRUE(conn.recvLine(line)) << "a reply must precede close";
        json::Value resp = json::parse(line);
        EXPECT_FALSE(resp.find("ok")->boolean);
        EXPECT_EQ(resp.find("error")->stringAt("kind"), "protocol");
        EXPECT_TRUE(conn.atEof());
    }

    // A never-terminated stream: the read-buffer cap fires without
    // waiting for a newline that never comes (the unbounded-buffer
    // bug this PR fixes).
    {
        RawConn conn(opts.socketPath);
        ASSERT_TRUE(conn.ok());
        conn.sendRaw(std::string(4096, 'y')); // no newline, ever
        std::string line;
        ASSERT_TRUE(conn.recvLine(line));
        json::Value resp = json::parse(line);
        EXPECT_EQ(resp.find("error")->stringAt("kind"), "protocol");
        EXPECT_TRUE(conn.atEof());
    }

    // Well-behaved clients on fresh connections are untouched.
    ServeClient client(opts.socketPath);
    EXPECT_TRUE(
        client.call("{\"id\":3,\"op\":\"ping\"}").find("ok")->boolean);
    ServeClient probe(opts.socketPath);
    json::Value stats = probe.call("{\"op\":\"stats\"}");
    EXPECT_GE(counterOf(stats, "serve.overlong_line"), 2);
    server.stop();
}

TEST(Serve, IdleConnectionsAreClosedBusyOnesAreNot)
{
    ScratchDir dir("serve-idle");
    ServeOptions opts;
    opts.socketPath = dir.file("s.sock");
    opts.idleTimeoutSeconds = 0.15;
    Server server(opts);
    server.start();

    // A connection with a request in flight is busy, not idle: a
    // compile slower than the idle timeout still gets its answer.
    ServeClient busy(opts.socketPath);
    busy.sendLine(compileLine(1, slowSource()));

    // A connection that sends nothing is idle: closed with a parting
    // structured notice.
    RawConn idle(opts.socketPath);
    ASSERT_TRUE(idle.ok());
    std::string line;
    ASSERT_TRUE(idle.recvLine(line, 10000)) << "idle close is announced";
    json::Value notice = json::parse(line);
    EXPECT_EQ(notice.find("error")->stringAt("kind"), "protocol");
    EXPECT_TRUE(idle.atEof());

    json::Value done = json::parse(busy.readLine());
    EXPECT_TRUE(done.find("ok")->boolean)
        << "in-flight work exempts a connection from the idle timeout";

    ServeClient probe(opts.socketPath);
    json::Value stats = probe.call("{\"op\":\"stats\"}");
    EXPECT_GE(counterOf(stats, "serve.idle_closed"), 1);
    server.stop();
}

TEST(Serve, StalledReaderIsCutLooseNotWaitedOn)
{
    ScratchDir dir("serve-stall");
    ServeOptions opts;
    opts.socketPath = dir.file("s.sock");
    opts.writeTimeoutSeconds = 0.3;
    opts.threads = 2;
    Server server(opts);
    server.start();

    // ~64k output words make a response far larger than the socket
    // buffers; the client never reads, so the server's send stalls.
    const std::string chatty =
        "void main() { int i; "
        "for (i = 0; i < 65536; i = i + 1) { out(i); } }";
    RawConn stalled(opts.socketPath);
    ASSERT_TRUE(stalled.ok());
    ASSERT_TRUE(stalled.sendLine(compileLine(1, chatty)));

    // The server stays fully responsive to everyone else while the
    // stalled write times out...
    ServeClient live(opts.socketPath);
    expectSum(live.call(compileLine(2, kSumSource)), 45);

    // ...and abandons the stalled response within the deadline
    // instead of wedging a worker on it forever.
    bool sawTimeout = false;
    for (int i = 0; i < 400 && !sawTimeout; ++i) {
        json::Value stats = live.call("{\"op\":\"stats\"}");
        sawTimeout = counterOf(stats, "serve.write_timeout") >= 1;
        if (!sawTimeout)
            std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    EXPECT_TRUE(sawTimeout)
        << "the stalled write must be abandoned, not waited on";
    expectSum(live.call(compileLine(3, kSumSource)), 45);
    server.stop();
}

TEST(Serve, LostConnectionIsARecoverableClientError)
{
    static_assert(std::is_base_of_v<UserError, ConnectionLost>,
                  "retry loops must be able to catch lost connections "
                  "as user-level errors");

    ScratchDir dir("serve-lost");
    ServeOptions opts;
    opts.socketPath = dir.file("s.sock");
    // Nothing listening yet: connecting fails recoverably.
    EXPECT_THROW(ServeClient{opts.socketPath}, ConnectionLost);

    Server server(opts);
    server.start();
    ServeClient client(opts.socketPath);
    EXPECT_TRUE(client.call("{\"op\":\"ping\"}").find("ok")->boolean);
    server.stop();

    // The server went away mid-session: the client surfaces
    // ConnectionLost — catchable, retryable — never a process abort.
    EXPECT_THROW(client.call("{\"op\":\"ping\"}"), ConnectionLost);
}

// ---------------------------------------------------------------------
// DiskCache unit coverage (no server in the loop)
// ---------------------------------------------------------------------

TEST(DiskCache, RoundtripAndRestart)
{
    ScratchDir dir("disk-rt");
    std::string cacheDir = dir.file("cache");
    {
        DiskCache cache(cacheDir);
        EXPECT_TRUE(cache.enabled());
        EXPECT_FALSE(cache.load("key-a").has_value());
        cache.store("key-a", "payload-a");
        cache.store("key-b", "");
        auto got = cache.load("key-a");
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(*got, "payload-a");
    }
    // A second instance (a restarted server) sees the same entries.
    DiskCache cache(cacheDir);
    EXPECT_EQ(cache.load("key-a").value_or("MISS"), "payload-a");
    EXPECT_EQ(cache.load("key-b").value_or("MISS"), "");
}

TEST(DiskCache, DisabledCacheMissesAndDropsQuietly)
{
    DiskCache cache("");
    EXPECT_FALSE(cache.enabled());
    cache.store("k", "v");
    EXPECT_FALSE(cache.load("k").has_value());
}

TEST(DiskCache, CorruptionIsAMissNeverACrash)
{
    ScratchDir dir("disk-bad");
    DiskCache cache(dir.file("cache"));
    cache.store("key", "payload");

    auto corruptWith = [&](const std::string &content) {
        std::ofstream out(cache.entryPath("key"),
                          std::ios::binary | std::ios::trunc);
        out << content;
    };

    corruptWith("");
    EXPECT_FALSE(cache.load("key").has_value()) << "empty file";

    corruptWith("wrong-magic-v9\n3\nkey\npayload");
    EXPECT_FALSE(cache.load("key").has_value()) << "bad magic";

    corruptWith("dspcc-disk-cache-v1\nnot-a-number\nkey\npayload");
    EXPECT_FALSE(cache.load("key").has_value()) << "bad length";

    corruptWith("dspcc-disk-cache-v1\n3\nke");
    EXPECT_FALSE(cache.load("key").has_value()) << "truncated key";

    // A colliding hash (simulated: another key's bytes in this key's
    // slot) fails full-key verification and reads as a miss.
    corruptWith("dspcc-disk-cache-v1\n3\nkez\npayload");
    EXPECT_FALSE(cache.load("key").has_value()) << "key mismatch";

    // The store path recovers over any of it.
    cache.store("key", "fresh");
    EXPECT_EQ(cache.load("key").value_or("MISS"), "fresh");
}

TEST(DiskCache, HashKeyIsStableAndDistinguishes)
{
    // FNV-1a is part of the on-disk format now: a silent change would
    // orphan every existing cache entry. Pin a known vector.
    EXPECT_EQ(DiskCache::hashKey(""), "cbf29ce484222325");
    EXPECT_EQ(DiskCache::hashKey("a"), DiskCache::hashKey("a"));
    EXPECT_NE(DiskCache::hashKey("a"), DiskCache::hashKey("b"));
    EXPECT_EQ(DiskCache::hashKey("x").size(), 16u);
}

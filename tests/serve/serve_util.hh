/**
 * @file
 * Shared helpers for the serve test tier (`ctest -L serve`): scratch
 * directories sized for sun_path, request builders and response
 * matchers for dsp-serve-v1, a raw byte-level client for protocol
 * abuse (the fuzzer and the overlong-line tests need to send frames
 * ServeClient refuses to), fd accounting, and — for tests compiled
 * with DSPCC_BIN — fork/exec plumbing for driving the real binary.
 */

#ifndef DSP_TESTS_SERVE_UTIL_HH
#define DSP_TESTS_SERVE_UTIL_HH

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "driver/server.hh"

namespace dsp::serve_test
{

/** Fresh per-test scratch directory under /tmp (short paths: socket
 *  paths must fit sun_path). Removed on destruction. */
struct ScratchDir
{
    std::string path;

    explicit ScratchDir(const std::string &tag)
    {
        path = "/tmp/dsp-" + tag + "-" + std::to_string(::getpid()) +
               "-" + std::to_string(counter++);
        std::filesystem::remove_all(path);
        std::filesystem::create_directories(path);
    }

    ~ScratchDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path, ec);
    }

    std::string
    file(const std::string &name) const
    {
        return path + "/" + name;
    }

    static inline int counter = 0;
};

inline const char *kSumSource =
    "void main() { int i; int acc; acc = 0; "
    "for (i = 0; i < 10; i = i + 1) { acc = acc + i; } out(acc); }";

inline std::string
compileLine(long long id, const std::string &source,
            const std::string &extra = "")
{
    std::ostringstream os;
    os << "{\"id\":" << id << ",\"op\":\"compile\",\"source\":"
       << json::quote(source);
    if (!extra.empty())
        os << "," << extra;
    os << "}";
    return os.str();
}

/** A source whose text (and therefore cache key) depends on @p n, so
 *  herds of requests cannot collapse in L1 — each one costs a real
 *  compile, which is what overload tests need. */
inline std::string
distinctSource(long long n)
{
    return "void main() { out(" + std::to_string(n) + " + 1); }";
}

/** A source whose simulation spins for tens of millions of loop
 *  iterations — long enough to straddle sub-second timeouts and to
 *  keep a worker busy while a test races it. out() reports the
 *  iteration count so the reply is still checkable. */
inline std::string
slowSource(long long iters = 8000000)
{
    return "void main() { int i; int acc; acc = 0; "
           "for (i = 0; i < " +
           std::to_string(iters) +
           "; i = i + 1) { acc = acc + 1; } out(acc); }";
}

/** A waitForShutdown() predicate that gives up after
 *  @p deadlineSeconds (the latch winning returns true; the deadline
 *  winning returns false). */
inline std::function<bool()>
deadlineAfter(double deadlineSeconds)
{
    auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(deadlineSeconds));
    return [deadline] {
        return std::chrono::steady_clock::now() >= deadline;
    };
}

inline long
counterOf(const json::Value &statsResp, const std::string &name)
{
    const json::Value *stats = statsResp.find("stats");
    if (!stats)
        return -1;
    const json::Value *counters = stats->find("counters");
    if (!counters)
        return -1;
    return counters->longAt(name, 0);
}

/** Assert @p resp is {"ok":true} with a result whose single output
 *  word is @p expected. */
inline void
expectSum(const json::Value &resp, long expected)
{
    const json::Value *ok = resp.find("ok");
    ASSERT_NE(ok, nullptr);
    ASSERT_TRUE(ok->boolean) << "error: "
                             << resp.find("error")->stringAt("message");
    const json::Value *result = resp.find("result");
    ASSERT_NE(result, nullptr);
    const json::Value *out = result->find("output");
    ASSERT_NE(out, nullptr);
    ASSERT_EQ(out->items.size(), 1u);
    EXPECT_EQ(out->items[0].longAt("raw"), expected);
}

inline int
countOpenFds()
{
    int n = 0;
    for ([[maybe_unused]] const auto &e :
         std::filesystem::directory_iterator("/proc/self/fd"))
        ++n;
    return n;
}

/**
 * Byte-level dsp-serve-v1 client: no framing, no error handling, no
 * manners. Sends whatever bytes it is told to (including partial
 * frames and garbage) and reads replies line-by-line with a timeout.
 * ServeClient deliberately cannot express most of what the fuzzer and
 * the abuse tests must send.
 */
struct RawConn
{
    int fd = -1;
    std::string buf; ///< bytes received but not yet returned as lines

    explicit RawConn(const std::string &socketPath)
    {
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            return;
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, socketPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            ::close(fd);
            fd = -1;
        }
    }

    ~RawConn() { closeNow(); }
    RawConn(const RawConn &) = delete;
    RawConn &operator=(const RawConn &) = delete;

    bool ok() const { return fd >= 0; }

    void
    closeNow()
    {
        if (fd >= 0)
            ::close(fd);
        fd = -1;
    }

    /** Best-effort send; false once the server has closed on us
     *  (EPIPE/ECONNRESET are expected outcomes here, not errors). */
    bool
    sendRaw(const std::string &bytes)
    {
        std::size_t off = 0;
        while (off < bytes.size()) {
            ssize_t n = ::send(fd, bytes.data() + off,
                               bytes.size() - off, MSG_NOSIGNAL);
            if (n <= 0)
                return false;
            off += static_cast<std::size_t>(n);
        }
        return true;
    }

    bool sendLine(const std::string &line) { return sendRaw(line + "\n"); }

    /** Read one newline-terminated line; false on EOF or after
     *  @p timeout_ms without one (the fuzzer treats both as
     *  "no reply"). */
    bool
    recvLine(std::string &line, int timeout_ms = 10000)
    {
        auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
        for (;;) {
            std::size_t nl = buf.find('\n');
            if (nl != std::string::npos) {
                line = buf.substr(0, nl);
                buf.erase(0, nl + 1);
                return true;
            }
            auto left = std::chrono::duration_cast<
                            std::chrono::milliseconds>(
                            deadline - std::chrono::steady_clock::now())
                            .count();
            if (left <= 0 || fd < 0)
                return false;
            pollfd pfd{fd, POLLIN, 0};
            int pr = ::poll(&pfd, 1, static_cast<int>(left));
            if (pr <= 0)
                return false;
            char chunk[4096];
            ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
            if (n <= 0)
                return false; // EOF: server closed the connection
            buf.append(chunk, static_cast<std::size_t>(n));
        }
    }

    /** True once the server has closed its side (EOF observed). */
    bool
    atEof(int timeout_ms = 5000)
    {
        std::string line;
        return !recvLine(line, timeout_ms) && fd >= 0;
    }
};

#ifdef DSPCC_BIN

/** Fork+exec `dspcc --serve=<socket> [extra args...]`; returns the
 *  child pid (0 is never returned — the child execs or _exits). */
inline pid_t
spawnServer(const std::string &socketPath,
            const std::vector<std::string> &extraArgs = {})
{
    pid_t pid = ::fork();
    if (pid != 0)
        return pid;
    std::vector<std::string> args;
    args.push_back("dspcc");
    args.push_back("--serve=" + socketPath);
    for (const std::string &a : extraArgs)
        args.push_back(a);
    std::vector<char *> argv;
    for (std::string &a : args)
        argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(DSPCC_BIN, argv.data());
    _exit(127); // exec failed
}

/** Connect with retries: the child needs a moment to bind. */
inline std::unique_ptr<ServeClient>
connectWithRetry(const std::string &socketPath, int attempts = 100)
{
    for (int i = 0; i < attempts; ++i) {
        try {
            return std::make_unique<ServeClient>(socketPath);
        } catch (const std::exception &) {
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
    }
    return nullptr;
}

/** waitpid with a deadline; returns true (and the status) once the
 *  child exits, false if it is still running at the deadline. */
inline bool
waitForExit(pid_t pid, int &status, double deadlineSeconds)
{
    auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(deadlineSeconds));
    for (;;) {
        pid_t got = ::waitpid(pid, &status, WNOHANG);
        if (got == pid)
            return true;
        if (got < 0)
            return false;
        if (std::chrono::steady_clock::now() >= deadline)
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
}

#endif // DSPCC_BIN

} // namespace dsp::serve_test

#endif // DSP_TESTS_SERVE_UTIL_HH

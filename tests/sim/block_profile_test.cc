/**
 * @file
 * Edge cases of the per-block attribution behind
 * Simulator::blockCycles()/blockProfile(): the empty and single-block
 * programs, straight-line code, and blocks reached by returning from
 * an interrupt handler — in every case both engines must attribute
 * identically (the fast engine with block profiling enabled, or
 * forced onto the instrumented path by a nonzero interrupt period).
 */

#include <gtest/gtest.h>

#include <vector>

#include "driver/compiler.hh"
#include "support/profile.hh"

namespace dsp
{
namespace
{

ProgramProfile
runProfile(const CompileResult &compiled, Fidelity fid,
           const std::vector<uint32_t> &input = {},
           long interrupt_period = 0)
{
    Simulator sim(compiled.program, *compiled.module, fid);
    sim.setBlockProfiling(true);
    sim.setInterruptPeriod(interrupt_period);
    if (interrupt_period > 0)
        sim.setInterruptHandler([](Simulator &) {});
    sim.setInput(input);
    sim.run();
    return sim.blockProfile();
}

/** Both engines' profiles, asserted byte-identical, returned once. */
ProgramProfile
bothEngines(const CompileResult &compiled,
            const std::vector<uint32_t> &input = {},
            long interrupt_period = 0)
{
    ProgramProfile ref =
        runProfile(compiled, Fidelity::Instrumented, input,
                   interrupt_period);
    ProgramProfile fast =
        runProfile(compiled, Fidelity::Fast, input, interrupt_period);
    EXPECT_EQ(profileJson(ref), profileJson(fast));
    return ref;
}

TEST(BlockProfile, NeverRunSimulatorHasEmptyProfile)
{
    CompileResult compiled =
        compileSource("void main() { out(1); }", CompileOptions{});
    for (Fidelity fid : {Fidelity::Instrumented, Fidelity::Fast}) {
        Simulator sim(compiled.program, *compiled.module, fid);
        sim.setBlockProfiling(true);
        ProgramProfile p = sim.blockProfile();
        EXPECT_TRUE(p.empty());
        EXPECT_EQ(p.totalCycles, 0);
    }
}

TEST(BlockProfile, EmptyProgramAttributesItsHaltCycles)
{
    CompileResult compiled =
        compileSource("void main() {}", CompileOptions{});
    ProgramProfile p = bothEngines(compiled);
    // Even a no-op program executes its entry/halt sequence; whatever
    // those cycles are, the attribution must cover all of them.
    long sum = 0;
    for (const BlockProfileRow &r : p.blocks)
        sum += r.cycles;
    EXPECT_EQ(sum, p.totalCycles);
    EXPECT_GT(p.totalCycles, 0);
}

TEST(BlockProfile, StraightLineProgramExecutesEveryBlockOnce)
{
    CompileResult compiled = compileSource(R"(
        int A[4];
        void main() {
            A[0] = 3; A[1] = 4;
            out(A[0] * A[1]);
        }
    )",
                                           CompileOptions{});
    ProgramProfile p = bothEngines(compiled);
    ASSERT_FALSE(p.empty());
    for (const BlockProfileRow &r : p.blocks) {
        EXPECT_EQ(r.executions, 1)
            << r.function << " bb" << r.blockId;
        // One cycle per instruction, each executed exactly once.
        EXPECT_GE(r.cycles, r.executions);
    }
}

TEST(BlockProfile, LoopBlockDominatesAndCountsIterations)
{
    CompileResult compiled = compileSource(R"(
        int A[32];
        void main() {
            int s[1];
            s[0] = 0;
            for (int i = 0; i < 32; i++) A[i] = i;
            for (int i = 0; i < 32; i++) s[0] = s[0] + A[i];
            out(s[0]);
        }
    )",
                                           CompileOptions{});
    ProgramProfile p = bothEngines(compiled);
    long max_exec = 0;
    for (const BlockProfileRow &r : p.blocks)
        max_exec = std::max(max_exec, r.executions);
    // The loop bodies ran all 32 iterations.
    EXPECT_GE(max_exec, 32);
}

TEST(BlockProfile, InterruptReturnBlocksAttributeIdentically)
{
    // A nonzero interrupt period forces the fast engine onto the
    // instrumented path; attribution of blocks re-entered via
    // interrupt return must match a natively instrumented run.
    CompileResult compiled = compileSource(R"(
        int A[16];
        void main() {
            int s[1];
            s[0] = 0;
            for (int i = 0; i < 16; i++) A[i] = in();
            for (int i = 0; i < 16; i++) s[0] = s[0] + A[i];
            out(s[0]);
        }
    )",
                                           CompileOptions{});
    std::vector<uint32_t> input;
    for (int i = 0; i < 16; ++i)
        input.push_back(static_cast<uint32_t>(i + 1));

    ProgramProfile quiet = bothEngines(compiled, input);
    ProgramProfile interrupted = bothEngines(compiled, input, 7);

    // Prove the interrupted runs actually delivered interrupts (the
    // comparison would be vacuous otherwise).
    {
        Simulator sim(compiled.program, *compiled.module,
                      Fidelity::Instrumented);
        sim.setInterruptPeriod(7);
        sim.setInterruptHandler([](Simulator &) {});
        sim.setInput(input);
        sim.run();
        EXPECT_GT(sim.stats().interruptsDelivered, 0);
    }

    // Interrupt delivery must not perturb the program's own block
    // attribution (handlers run outside program cycle accounting).
    EXPECT_EQ(profileJson(quiet), profileJson(interrupted));
}

} // namespace
} // namespace dsp

/**
 * @file
 * Differential test of the two simulator engines: for every suite
 * benchmark under every allocation mode, the predecoded fast path must
 * reproduce the instrumented reference bit for bit — identical output
 * words and identical statistics (cycles, ops, memory ops, paired
 * cycles, stack watermarks).
 *
 * This is the contract that lets the benchmark harness measure on the
 * fast path while the instrumented engine remains the semantic
 * reference.
 */

#include <gtest/gtest.h>

#include "driver/compiler.hh"
#include "suite/suite.hh"

namespace dsp
{
namespace
{

struct DiffCase
{
    const Benchmark *bench;
    AllocMode mode;
};

std::vector<DiffCase>
allCases()
{
    std::vector<DiffCase> cases;
    for (const Benchmark *b : allBenchmarks()) {
        for (AllocMode mode :
             {AllocMode::SingleBank, AllocMode::CB, AllocMode::CBDup,
              AllocMode::FullDup, AllocMode::Ideal}) {
            cases.push_back({b, mode});
        }
    }
    return cases;
}

const char *
modeToken(AllocMode mode)
{
    switch (mode) {
      case AllocMode::SingleBank: return "SingleBank";
      case AllocMode::CB: return "CB";
      case AllocMode::CBDup: return "CBDup";
      case AllocMode::FullDup: return "FullDup";
      case AllocMode::Ideal: return "Ideal";
    }
    return "Unknown";
}

std::string
caseName(const testing::TestParamInfo<DiffCase> &info)
{
    return info.param.bench->name + "_" + modeToken(info.param.mode);
}

class FastPathDiff : public testing::TestWithParam<DiffCase>
{
};

TEST_P(FastPathDiff, MatchesInstrumentedReference)
{
    const DiffCase &c = GetParam();
    CompileOptions opts;
    opts.mode = c.mode;
    auto compiled = compileSource(c.bench->source, opts);

    Simulator ref(compiled.program, *compiled.module,
                  Fidelity::Instrumented);
    ref.setInput(c.bench->input);
    ref.run();

    Simulator fast(compiled.program, *compiled.module, Fidelity::Fast);
    fast.setInput(c.bench->input);
    fast.run();

    // Identical output streams.
    ASSERT_EQ(fast.output().size(), ref.output().size());
    for (std::size_t i = 0; i < ref.output().size(); ++i) {
        EXPECT_EQ(fast.output()[i].raw, ref.output()[i].raw)
            << "output word " << i;
        EXPECT_EQ(fast.output()[i].isFloat, ref.output()[i].isFloat)
            << "output word " << i;
    }

    // Identical performance statistics.
    EXPECT_EQ(fast.stats().cycles, ref.stats().cycles);
    EXPECT_EQ(fast.stats().opsExecuted, ref.stats().opsExecuted);
    EXPECT_EQ(fast.stats().memOps, ref.stats().memOps);
    EXPECT_EQ(fast.stats().pairedMemCycles, ref.stats().pairedMemCycles);
    EXPECT_EQ(fast.stats().peakStackX, ref.stats().peakStackX);
    EXPECT_EQ(fast.stats().peakStackY, ref.stats().peakStackY);

    // Identical halt state.
    EXPECT_TRUE(fast.halted());
    EXPECT_EQ(fast.pc(), ref.pc());

    // The reference keeps profiling counts; the fast path does not.
    EXPECT_FALSE(ref.profile().empty());
    EXPECT_TRUE(fast.profile().empty());
}

INSTANTIATE_TEST_SUITE_P(Suite, FastPathDiff,
                         testing::ValuesIn(allCases()), caseName);

// The driver-level helpers honor the fidelity selection end to end.
TEST(FastPathDriver, RunProgramFidelity)
{
    const Benchmark *b = findBenchmark("fir_256_64");
    ASSERT_NE(b, nullptr);
    CompileOptions opts;
    opts.mode = AllocMode::CB;
    auto compiled = compileSource(b->source, opts);

    auto ref = runProgram(compiled, b->input, 200'000'000,
                          Fidelity::Instrumented);
    auto fast = runProgram(compiled, b->input, 200'000'000,
                           Fidelity::Fast);
    EXPECT_EQ(fast.stats.cycles, ref.stats.cycles);
    EXPECT_EQ(fast.output.size(), ref.output.size());
    EXPECT_FALSE(ref.profile.empty());
    EXPECT_TRUE(fast.profile.empty());
}

// Budget exhaustion is recoverable through the bounded-run API on both
// engines (harness workers must never abort the process).
TEST(FastPathDriver, BoundedRunReportsBudgetExhaustion)
{
    auto compiled =
        compileSource("void main() { while (1) {} out(1); }");
    for (Fidelity f : {Fidelity::Instrumented, Fidelity::Fast}) {
        Simulator sim(compiled.program, *compiled.module, f);
        EXPECT_EQ(sim.runBounded(5'000),
                  Simulator::RunStatus::CycleBudgetExhausted)
            << fidelityName(f);
        EXPECT_FALSE(sim.halted());

        RunOutcome outcome = tryRunProgram(compiled, {}, 5'000, f);
        EXPECT_FALSE(outcome.ok);
        EXPECT_NE(outcome.error.find("cycle budget"), std::string::npos)
            << outcome.error;
    }
}

} // namespace
} // namespace dsp

/**
 * @file
 * Simulator unit tests: machine arithmetic semantics, the
 * read-before-write rule inside a VLIW instruction, bank-port
 * enforcement, memory layout/initialization, fault detection, and the
 * statistics counters.
 */

#include <gtest/gtest.h>

#include "driver/compiler.hh"

namespace dsp
{
namespace
{

RunResult
run(const std::string &src, const std::vector<int32_t> &input = {},
    AllocMode mode = AllocMode::CB)
{
    CompileOptions opts;
    opts.mode = mode;
    auto compiled = compileSource(src, opts);
    return runProgram(compiled, packInputInts(input));
}

int32_t
runOne(const std::string &expr, const std::vector<int32_t> &input = {})
{
    std::string src = "void main() { int a = in(); int b = in(); out(" +
                      expr + "); }";
    std::vector<int32_t> padded = input;
    padded.resize(2, 0);
    auto r = run(src, padded);
    return r.output.at(0).asInt();
}

TEST(SimArith, IntegerOperators)
{
    EXPECT_EQ(runOne("a + b", {7, 5}), 12);
    EXPECT_EQ(runOne("a - b", {7, 5}), 2);
    EXPECT_EQ(runOne("a * b", {-7, 5}), -35);
    EXPECT_EQ(runOne("a / b", {-7, 2}), -3); // truncation toward zero
    EXPECT_EQ(runOne("a % b", {-7, 2}), -1);
    EXPECT_EQ(runOne("a & b", {12, 10}), 8);
    EXPECT_EQ(runOne("a | b", {12, 10}), 14);
    EXPECT_EQ(runOne("a ^ b", {12, 10}), 6);
    EXPECT_EQ(runOne("a << b", {3, 4}), 48);
    EXPECT_EQ(runOne("a >> b", {-16, 2}), -4); // arithmetic shift
    EXPECT_EQ(runOne("-a", {9}), -9);
    EXPECT_EQ(runOne("~a", {0}), -1);
}

TEST(SimArith, Comparisons)
{
    EXPECT_EQ(runOne("a < b", {1, 2}), 1);
    EXPECT_EQ(runOne("a <= b", {2, 2}), 1);
    EXPECT_EQ(runOne("a > b", {1, 2}), 0);
    EXPECT_EQ(runOne("a >= b", {3, 2}), 1);
    EXPECT_EQ(runOne("a == b", {5, 5}), 1);
    EXPECT_EQ(runOne("a != b", {5, 5}), 0);
}

TEST(SimArith, WrapAround32Bit)
{
    EXPECT_EQ(runOne("a + b", {2147483647, 1}),
              std::numeric_limits<int32_t>::min());
    EXPECT_EQ(runOne("a * b", {65536, 65536}), 0);
}

TEST(SimArith, FloatRoundTrip)
{
    CompileOptions opts;
    auto compiled = compileSource(
        "void main() { float f = inf(); outf(f * 2.0 + 0.5); }", opts);
    auto rr = runProgram(compiled, packInputFloats({1.25f}));
    EXPECT_FLOAT_EQ(rr.output.at(0).asFloat(), 3.0f);
}

TEST(SimArith, FloatIntConversions)
{
    auto r = run(R"(
        void main() {
            out((int)3.99);
            out((int)-3.99);
            float f = (float)7;
            outf(f / 2.0);
        }
    )");
    EXPECT_EQ(r.output.at(0).asInt(), 3);
    EXPECT_EQ(r.output.at(1).asInt(), -3);
    EXPECT_FLOAT_EQ(r.output.at(2).asFloat(), 3.5f);
}

TEST(SimFaults, DivisionByZero)
{
    EXPECT_THROW(run("void main() { out(1 / in()); }", {0}), UserError);
    EXPECT_THROW(run("void main() { out(1 % in()); }", {0}), UserError);
}

TEST(SimFaults, InputUnderrun)
{
    EXPECT_THROW(run("void main() { out(in() + in()); }", {1}),
                 UserError);
}

TEST(SimFaults, RunawayCycleBudget)
{
    CompileOptions opts;
    auto compiled =
        compileSource("void main() { while (1) {} out(1); }", opts);
    Simulator sim(compiled.program, *compiled.module);
    EXPECT_THROW(sim.run(10'000), UserError);
}

// Budget boundary semantics of runBounded, as documented in
// simulator.hh: a budget of N executes at most N instructions, and the
// halt check precedes the budget check. Run the program to completion
// first to learn its exact length N, then probe budgets N-1, N, N+1 on
// both engines.
TEST(SimFaults, RunBoundedBudgetBoundary)
{
    CompileOptions opts;
    auto compiled = compileSource(
        "void main() { int s = 0;"
        "  for (int i = 0; i < 5; i++) s += i;"
        "  out(s); }",
        opts);

    long n = 0;
    {
        Simulator probe(compiled.program, *compiled.module);
        ASSERT_EQ(probe.runBounded(1'000'000),
                  Simulator::RunStatus::Halted);
        n = probe.stats().cycles;
        ASSERT_GT(n, 1);
    }

    for (Fidelity fid :
         {Fidelity::Instrumented, Fidelity::Fast, Fidelity::Threaded}) {
        // Budget N-1: one instruction short of the Halt.
        {
            Simulator sim(compiled.program, *compiled.module, fid);
            EXPECT_EQ(sim.runBounded(n - 1),
                      Simulator::RunStatus::CycleBudgetExhausted)
                << fidelityName(fid);
            EXPECT_EQ(sim.stats().cycles, n - 1) << fidelityName(fid);
            EXPECT_FALSE(sim.halted()) << fidelityName(fid);
        }
        // Budget N: Halt commits as exactly the N-th instruction.
        {
            Simulator sim(compiled.program, *compiled.module, fid);
            EXPECT_EQ(sim.runBounded(n), Simulator::RunStatus::Halted)
                << fidelityName(fid);
            EXPECT_EQ(sim.stats().cycles, n) << fidelityName(fid);
            EXPECT_TRUE(sim.halted()) << fidelityName(fid);
        }
        // Budget N+1: slack changes nothing — no extra execution, no
        // double-counted halting instruction.
        {
            Simulator sim(compiled.program, *compiled.module, fid);
            EXPECT_EQ(sim.runBounded(n + 1),
                      Simulator::RunStatus::Halted)
                << fidelityName(fid);
            EXPECT_EQ(sim.stats().cycles, n) << fidelityName(fid);
        }
    }
}

TEST(SimFaults, RunBoundedBudgetBoundaryReportsNoOutputShortfall)
{
    // Exhaustion must leave the partial architectural state intact:
    // the words output before the budget ran out are still there.
    CompileOptions opts;
    auto compiled = compileSource(
        "void main() { out(11); out(22); out(33); }", opts);

    Simulator full(compiled.program, *compiled.module);
    ASSERT_EQ(full.runBounded(1'000'000), Simulator::RunStatus::Halted);
    long n = full.stats().cycles;
    ASSERT_EQ(full.output().size(), 3u);

    Simulator cut(compiled.program, *compiled.module);
    ASSERT_EQ(cut.runBounded(n - 1),
              Simulator::RunStatus::CycleBudgetExhausted);
    // The final out() may or may not have committed depending on where
    // the Halt landed, but earlier output is never lost.
    EXPECT_GE(cut.output().size(), 2u);
    EXPECT_EQ(cut.output().at(0).asInt(), 11);
    EXPECT_EQ(cut.output().at(1).asInt(), 22);
}

TEST(SimMemory, GlobalInitialization)
{
    auto r = run(R"(
        int a[4] = {10, 20, 30};
        float f[2] = {1.5, -2.5};
        void main() {
            out(a[0] + a[1] + a[2] + a[3]);
            outf(f[0]);
            outf(f[1]);
        }
    )");
    EXPECT_EQ(r.output.at(0).asInt(), 60);
    EXPECT_FLOAT_EQ(r.output.at(1).asFloat(), 1.5f);
    EXPECT_FLOAT_EQ(r.output.at(2).asFloat(), -2.5f);
}

TEST(SimMemory, DuplicatedGlobalsInitializeBothCopies)
{
    const char *src = R"(
        int sig[8] = {1, 2, 3, 4, 5, 6, 7, 8};
        int R[4];
        void main() {
            for (int m = 0; m < 4; m++) {
                int s = 0;
                for (int n = 0; n < 4; n++)
                    s += sig[n] * sig[n + m];
                R[m] = s;
            }
            for (int m = 0; m < 4; m++) out(R[m]);
        }
    )";
    CompileOptions opts;
    opts.mode = AllocMode::FullDup;
    auto compiled = compileSource(src, opts);
    DataObject *sig = compiled.module->findGlobal("sig");
    ASSERT_TRUE(sig->duplicated);

    Simulator sim(compiled.program, *compiled.module);
    for (int i = 0; i < 8; ++i) {
        auto [ax, ay] = sim.objectAddresses(*sig, i);
        EXPECT_EQ(sim.readMem(ax), static_cast<uint32_t>(i + 1));
        EXPECT_EQ(sim.readMem(ay), static_cast<uint32_t>(i + 1));
    }

    // Copies stay coherent through execution.
    sim.run();
    for (int i = 0; i < 8; ++i) {
        auto [ax, ay] = sim.objectAddresses(*sig, i);
        EXPECT_EQ(sim.readMem(ax), sim.readMem(ay));
    }
}

TEST(SimMemory, StacksGrowDownFromBankTops)
{
    const char *src = R"(
        int f() {
            int local[10];
            for (int i = 0; i < 10; i++) local[i] = i;
            return local[9];
        }
        void main() { out(f()); }
    )";
    CompileOptions opts;
    opts.mode = AllocMode::CB;
    auto compiled = compileSource(src, opts);
    Simulator sim(compiled.program, *compiled.module);
    int top_x = compiled.program.config.bankWords;
    EXPECT_EQ(sim.addrReg(regs::AddrSpX), uint32_t(top_x));
    sim.run();
    // Stacks fully popped at halt.
    EXPECT_EQ(sim.addrReg(regs::AddrSpX), uint32_t(top_x));
    EXPECT_EQ(sim.output().at(0).asInt(), 9);
    EXPECT_GT(sim.stats().peakStackX + sim.stats().peakStackY, 0);
}

TEST(SimStats, CyclesEqualInstructionsExecuted)
{
    auto r = run("void main() { out(1); out(2); }");
    EXPECT_GE(r.stats.cycles, 2);
    EXPECT_GE(r.stats.opsExecuted, r.stats.cycles);
}

TEST(SimStats, PairedMemCyclesOnlyWithDualBanks)
{
    const char *src = R"(
        int a[32];
        int b[32];
        void main() {
            int s = 0;
            for (int i = 0; i < 32; i++)
                s += a[i] * b[i];
            out(s);
        }
    )";
    auto single = run(src, {}, AllocMode::SingleBank);
    auto cb = run(src, {}, AllocMode::CB);
    EXPECT_EQ(single.stats.pairedMemCycles, 0);
    EXPECT_GT(cb.stats.pairedMemCycles, 0);
}

TEST(SimSemantics, ReadBeforeWriteWithinInstruction)
{
    // A loop whose schedule packs `ld x[i]` with `addi i, i, 1`
    // relies on reads committing before writes. The delay-line shift
    // exercises load/store anti-dependences in one cycle.
    const char *src = R"(
        int x[8] = {1, 2, 3, 4, 5, 6, 7, 8};
        void main() {
            for (int k = 7; k > 0; k--)
                x[k] = x[k - 1];
            x[0] = 99;
            for (int k = 0; k < 8; k++)
                out(x[k]);
        }
    )";
    for (AllocMode mode :
         {AllocMode::SingleBank, AllocMode::CB, AllocMode::Ideal}) {
        auto r = run(src, {}, mode);
        std::vector<int32_t> got;
        for (const auto &w : r.output)
            got.push_back(w.asInt());
        EXPECT_EQ(got, (std::vector<int32_t>{99, 1, 2, 3, 4, 5, 6, 7}));
    }
}

TEST(SimProfile, CountsHotBlocks)
{
    auto r = run(R"(
        void main() {
            int s = 0;
            for (int i = 0; i < 100; i++)
                s += i;
            out(s);
        }
    )");
    long hottest = 0;
    for (const auto &[key, count] : r.profile)
        hottest = std::max(hottest, count);
    // Loop body is entered 50 times after unrolling by two (or 100
    // without); either way the hot block dominates.
    EXPECT_GE(hottest, 50);
    EXPECT_EQ(r.output.at(0).asInt(), 4950);
}

TEST(SimInterrupts, DeliveredOnlyWhenUnmasked)
{
    const char *src = R"(
        void main() {
            int s = 0;
            for (int i = 0; i < 200; i++)
                s += i;
            out(s);
        }
    )";
    CompileOptions opts;
    auto compiled = compileSource(src, opts);
    Simulator sim(compiled.program, *compiled.module);
    long fired = 0;
    sim.setInterruptPeriod(10);
    sim.setInterruptHandler([&](Simulator &) { ++fired; });
    sim.run();
    EXPECT_GT(fired, 0);
    EXPECT_EQ(fired, sim.stats().interruptsDelivered);
}

} // namespace
} // namespace dsp

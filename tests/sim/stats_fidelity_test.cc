/**
 * @file
 * Pins the SimStats engine-independence contract documented on the
 * struct: which fields both engines must agree on, which are
 * instrumented-only, and the arithmetic identities of the derived
 * memory-width histogram and the per-block cycle attribution.
 *
 * The fast-path diff test already sweeps the whole suite for
 * bit-equality; this test is the focused, assertion-per-field
 * statement of the contract (so a future engine change that breaks,
 * say, stack watermarks under Fast fails here by name).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "driver/compiler.hh"
#include "support/profile.hh"

namespace dsp
{
namespace
{

/** A kernel with a stack frame (the callee's local array forces
 *  one, so the watermark contract is exercised), paired loads
 *  (dual-bank parallelism), and a loop (distinct per-block cycle
 *  weights). */
const char *kKernel = R"(
    int A[16]; int B[16];
    int dot(int n) {
        int acc[1];
        acc[0] = 0;
        for (int i = 0; i < n; i++) acc[0] = acc[0] + A[i] * B[i];
        return acc[0];
    }
    void main() {
        for (int i = 0; i < 16; i++) { A[i] = in(); B[i] = in(); }
        out(dot(16));
    }
)";

std::vector<uint32_t>
kernelInput()
{
    std::vector<uint32_t> input;
    for (int i = 0; i < 32; ++i)
        input.push_back(static_cast<uint32_t>(i + 1));
    return input;
}

struct Engines
{
    CompileResult compiled;
    SimStats instrumented;
    SimStats fast;
    ProfileCounts instrumentedProfile;
    ProfileCounts instrumentedBlockCycles;
    ProfileCounts fastProfile;
    ProfileCounts fastBlockCycles;

    explicit Engines(AllocMode mode)
    {
        CompileOptions opts;
        opts.mode = mode;
        compiled = compileSource(kKernel, opts);

        Simulator ref(compiled.program, *compiled.module,
                      Fidelity::Instrumented);
        ref.setInput(kernelInput());
        ref.run();
        instrumented = ref.stats();
        instrumentedProfile = ref.profile();
        instrumentedBlockCycles = ref.blockCycles();

        Simulator fst(compiled.program, *compiled.module,
                      Fidelity::Fast);
        fst.setInput(kernelInput());
        fst.run();
        fast = fst.stats();
        fastProfile = fst.profile();
        fastBlockCycles = fst.blockCycles();
    }
};

TEST(StatsFidelity, EngineIndependentFieldsAgree)
{
    for (AllocMode mode : {AllocMode::SingleBank, AllocMode::CB}) {
        Engines e(mode);
        // The six engine-independent fields, by name.
        EXPECT_EQ(e.fast.cycles, e.instrumented.cycles);
        EXPECT_EQ(e.fast.opsExecuted, e.instrumented.opsExecuted);
        EXPECT_EQ(e.fast.memOps, e.instrumented.memOps);
        EXPECT_EQ(e.fast.pairedMemCycles,
                  e.instrumented.pairedMemCycles);
        EXPECT_EQ(e.fast.peakStackX, e.instrumented.peakStackX);
        EXPECT_EQ(e.fast.peakStackY, e.instrumented.peakStackY);
        // The kernel makes a call, so the watermark contract is
        // actually exercised (not just 0 == 0).
        EXPECT_GT(std::max(e.fast.peakStackX, e.fast.peakStackY), 0);
    }
}

TEST(StatsFidelity, InstrumentedOnlyFieldsAreEmptyUnderFast)
{
    Engines e(AllocMode::CB);
    // interruptsDelivered: no interrupts were injected, so both are 0
    // here; the engine-forcing behavior (a nonzero interrupt period
    // falls back to the instrumented engine) is pinned by the
    // interrupt tests. Profiling is the observable difference.
    EXPECT_EQ(e.fast.interruptsDelivered, 0);
    EXPECT_FALSE(e.instrumentedProfile.empty());
    EXPECT_FALSE(e.instrumentedBlockCycles.empty());
    EXPECT_TRUE(e.fastProfile.empty());
    EXPECT_TRUE(e.fastBlockCycles.empty());
}

TEST(StatsFidelity, OptInFastProfilingMatchesInstrumented)
{
    // With block profiling enabled, the fast engine must reproduce
    // the instrumented engine's attribution exactly — counts, bank
    // traffic, conflicts, the whole dsp-profile-v1 row set.
    for (AllocMode mode :
         {AllocMode::SingleBank, AllocMode::CB, AllocMode::Ideal}) {
        CompileOptions opts;
        opts.mode = mode;
        CompileResult compiled = compileSource(kKernel, opts);

        Simulator ref(compiled.program, *compiled.module,
                      Fidelity::Instrumented);
        ref.setInput(kernelInput());
        ref.run();

        Simulator fst(compiled.program, *compiled.module,
                      Fidelity::Fast);
        fst.setBlockProfiling(true);
        fst.setInput(kernelInput());
        fst.run();

        EXPECT_TRUE(fst.blockProfilingEnabled());
        EXPECT_EQ(fst.profile(), ref.profile());
        EXPECT_EQ(fst.blockCycles(), ref.blockCycles());
        EXPECT_EQ(profileJson(fst.blockProfile()),
                  profileJson(ref.blockProfile()));
        EXPECT_FALSE(fst.blockProfile().empty());
    }
}

TEST(StatsFidelity, MemWidthHistogramIdentities)
{
    for (AllocMode mode :
         {AllocMode::SingleBank, AllocMode::CB, AllocMode::Ideal}) {
        Engines e(mode);
        SimStats::MemWidthHistogram h = e.fast.memWidthHistogram();
        // Partition of all cycles, consistent with the raw counters.
        EXPECT_EQ(h.cycles0 + h.cycles1 + h.cycles2, e.fast.cycles);
        EXPECT_EQ(h.cycles1 + 2 * h.cycles2, e.fast.memOps);
        EXPECT_EQ(h.cycles2, e.fast.pairedMemCycles);
        EXPECT_GE(h.cycles0, 0);
        EXPECT_GE(h.cycles1, 0);
        EXPECT_GE(h.cycles2, 0);
        if (mode != AllocMode::SingleBank)
            EXPECT_GT(h.cycles2, 0)
                << "dual-bank modes pair accesses in this kernel";
    }
}

TEST(StatsFidelity, BlockCyclesSumToTotalCycles)
{
    Engines e(AllocMode::CB);
    long sum = 0;
    for (const auto &[key, cycles] : e.instrumentedBlockCycles) {
        EXPECT_GT(cycles, 0) << key.first << " bb" << key.second;
        sum += cycles;
    }
    // Every executed instruction belongs to exactly one block, one
    // cycle each: the attribution must be exhaustive.
    EXPECT_EQ(sum, e.instrumented.cycles);

    // Attribution is at least as fine as the profile: every profiled
    // block has a cycle entry >= its execution count.
    for (const auto &[key, count] : e.instrumentedProfile) {
        auto it = e.instrumentedBlockCycles.find(key);
        ASSERT_NE(it, e.instrumentedBlockCycles.end());
        EXPECT_GE(it->second, count);
    }
}

} // namespace
} // namespace dsp

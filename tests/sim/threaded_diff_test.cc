/**
 * @file
 * Differential test of the threaded-code engine: for every suite
 * benchmark under every allocation mode, Fidelity::Threaded must
 * reproduce the instrumented reference AND the fast path bit for bit —
 * identical output words, identical statistics, identical final memory
 * image. This is the contract that lets the benchmark harness measure
 * on threaded code while the instrumented engine remains the semantic
 * reference.
 *
 * Also pinned here: the fidelity name round-trip, the translation
 * counters, interrupt coherence (a nonzero interrupt period forces the
 * instrumented engine under Threaded exactly as under Fast), and the
 * runBounded budget-boundary semantics on the threaded tier.
 */

#include <gtest/gtest.h>

#include "driver/compiler.hh"
#include "sim/threaded_engine.hh"
#include "suite/suite.hh"

namespace dsp
{
namespace
{

struct DiffCase
{
    const Benchmark *bench;
    AllocMode mode;
};

std::vector<DiffCase>
allCases()
{
    std::vector<DiffCase> cases;
    for (const Benchmark *b : allBenchmarks()) {
        for (AllocMode mode :
             {AllocMode::SingleBank, AllocMode::CB, AllocMode::CBDup,
              AllocMode::FullDup, AllocMode::Ideal}) {
            cases.push_back({b, mode});
        }
    }
    return cases;
}

const char *
modeToken(AllocMode mode)
{
    switch (mode) {
      case AllocMode::SingleBank: return "SingleBank";
      case AllocMode::CB: return "CB";
      case AllocMode::CBDup: return "CBDup";
      case AllocMode::FullDup: return "FullDup";
      case AllocMode::Ideal: return "Ideal";
    }
    return "Unknown";
}

std::string
caseName(const testing::TestParamInfo<DiffCase> &info)
{
    return info.param.bench->name + "_" + modeToken(info.param.mode);
}

void
expectIdenticalRun(Simulator &a, Simulator &b, const char *label)
{
    ASSERT_EQ(a.output().size(), b.output().size()) << label;
    for (std::size_t i = 0; i < b.output().size(); ++i) {
        ASSERT_EQ(a.output()[i].raw, b.output()[i].raw)
            << label << " output word " << i;
        ASSERT_EQ(a.output()[i].isFloat, b.output()[i].isFloat)
            << label << " output word " << i;
    }

    EXPECT_EQ(a.stats().cycles, b.stats().cycles) << label;
    EXPECT_EQ(a.stats().opsExecuted, b.stats().opsExecuted) << label;
    EXPECT_EQ(a.stats().memOps, b.stats().memOps) << label;
    EXPECT_EQ(a.stats().pairedMemCycles, b.stats().pairedMemCycles)
        << label;
    EXPECT_EQ(a.stats().peakStackX, b.stats().peakStackX) << label;
    EXPECT_EQ(a.stats().peakStackY, b.stats().peakStackY) << label;

    EXPECT_EQ(a.halted(), b.halted()) << label;
    EXPECT_EQ(a.pc(), b.pc()) << label;
}

void
expectIdenticalMemory(Simulator &a, Simulator &b, int total_words,
                      const char *label)
{
    for (int addr = 0; addr < total_words; ++addr)
        ASSERT_EQ(a.readMem(addr), b.readMem(addr))
            << label << " memory word " << addr;
}

class ThreadedDiff : public testing::TestWithParam<DiffCase>
{
};

// The core three-way sweep: instrumented vs fast vs threaded over the
// full benchmark suite in every allocation mode, comparing output,
// statistics, and the complete final data-memory image.
TEST_P(ThreadedDiff, MatchesBothReferenceEngines)
{
    const DiffCase &c = GetParam();
    CompileOptions opts;
    opts.mode = c.mode;
    auto compiled = compileSource(c.bench->source, opts);
    const int total_words = compiled.program.config.totalWords();

    Simulator ref(compiled.program, *compiled.module,
                  Fidelity::Instrumented);
    ref.setInput(c.bench->input);
    ref.run();

    Simulator fast(compiled.program, *compiled.module, Fidelity::Fast);
    fast.setInput(c.bench->input);
    fast.run();

    Simulator thr(compiled.program, *compiled.module,
                  Fidelity::Threaded);
    thr.setInput(c.bench->input);
    thr.run();

    expectIdenticalRun(thr, ref, "threaded-vs-instrumented");
    expectIdenticalRun(thr, fast, "threaded-vs-fast");
    expectIdenticalMemory(thr, ref, total_words,
                          "threaded-vs-instrumented");
    expectIdenticalMemory(thr, fast, total_words, "threaded-vs-fast");

    // No deopts on a clean run, and the engine stays on the hot tier.
    EXPECT_EQ(thr.threadedStats().deopts, 0);
    EXPECT_TRUE(thr.engineDegradations().empty());
}

INSTANTIATE_TEST_SUITE_P(Suite, ThreadedDiff,
                         testing::ValuesIn(allCases()), caseName);

// Block profiling forces the precise tier under Threaded exactly as
// documented: profiles come out engine-independent.
TEST(ThreadedProfile, BlockProfileMatchesInstrumented)
{
    const Benchmark *b = findBenchmark("fir_256_64");
    ASSERT_NE(b, nullptr);
    CompileOptions opts;
    opts.mode = AllocMode::CB;
    auto compiled = compileSource(b->source, opts);

    Simulator ref(compiled.program, *compiled.module,
                  Fidelity::Instrumented);
    ref.setInput(b->input);
    ref.run();

    Simulator thr(compiled.program, *compiled.module,
                  Fidelity::Threaded);
    thr.setBlockProfiling(true);
    thr.setInput(b->input);
    thr.run();

    EXPECT_EQ(thr.profile(), ref.profile());
    EXPECT_EQ(thr.blockCycles(), ref.blockCycles());
    // Profiling forced the fast path, so nothing was translated.
    EXPECT_EQ(thr.threadedStats().blocksTranslated, 0);

    ProgramProfile pr = ref.blockProfile();
    ProgramProfile pt = thr.blockProfile();
    ASSERT_EQ(pt.blocks.size(), pr.blocks.size());
    for (std::size_t i = 0; i < pr.blocks.size(); ++i) {
        EXPECT_EQ(pt.blocks[i].cycles, pr.blocks[i].cycles);
        EXPECT_EQ(pt.blocks[i].executions, pr.blocks[i].executions);
        EXPECT_EQ(pt.blocks[i].memOps, pr.blocks[i].memOps);
    }
}

// A nonzero interrupt period forces the instrumented engine under
// Threaded, so duplicated-data interrupt coherence is preserved and
// interrupts actually deliver.
TEST(ThreadedInterrupts, InterruptPeriodForcesInstrumentedEngine)
{
    const Benchmark *b = findBenchmark("fir_256_64");
    ASSERT_NE(b, nullptr);
    CompileOptions opts;
    opts.mode = AllocMode::CBDup;
    auto compiled = compileSource(b->source, opts);

    Simulator ref(compiled.program, *compiled.module,
                  Fidelity::Instrumented);
    ref.setInterruptPeriod(512);
    long ref_interrupts = 0;
    ref.setInterruptHandler([&](Simulator &) { ++ref_interrupts; });
    ref.setInput(b->input);
    ref.run();

    Simulator thr(compiled.program, *compiled.module,
                  Fidelity::Threaded);
    thr.setInterruptPeriod(512);
    long thr_interrupts = 0;
    thr.setInterruptHandler([&](Simulator &) { ++thr_interrupts; });
    thr.setInput(b->input);
    thr.run();

    EXPECT_GT(thr_interrupts, 0);
    EXPECT_EQ(thr_interrupts, ref_interrupts);
    EXPECT_EQ(thr.stats().interruptsDelivered,
              ref.stats().interruptsDelivered);
    EXPECT_EQ(thr.stats().cycles, ref.stats().cycles);
    ASSERT_EQ(thr.output().size(), ref.output().size());
    for (std::size_t i = 0; i < ref.output().size(); ++i)
        EXPECT_EQ(thr.output()[i].raw, ref.output()[i].raw);
    // The instrumented tier ran: nothing was translated.
    EXPECT_EQ(thr.threadedStats().blocksTranslated, 0);
}

// runBounded budget semantics on the threaded tier: a budget of N
// executes at most N instructions, the halt check precedes the budget
// check, and resuming after exhaustion continues bit-exact. Hot code
// makes this interesting: traces are only entered when the remaining
// budget covers the whole block, so budget tails interpret.
TEST(ThreadedBudget, RunBoundedBoundaryExactness)
{
    const Benchmark *b = findBenchmark("fir_256_64");
    ASSERT_NE(b, nullptr);
    CompileOptions opts;
    opts.mode = AllocMode::CB;
    auto compiled = compileSource(b->source, opts);

    long n = 0;
    {
        Simulator probe(compiled.program, *compiled.module,
                        Fidelity::Fast);
        probe.setInput(b->input);
        ASSERT_EQ(probe.runBounded(200'000'000),
                  Simulator::RunStatus::Halted);
        n = probe.stats().cycles;
        ASSERT_GT(n, ThreadedEngine::kHotThreshold);
    }

    // Budget N-1: one instruction short of the Halt.
    {
        Simulator sim(compiled.program, *compiled.module,
                      Fidelity::Threaded);
        sim.setInput(b->input);
        EXPECT_EQ(sim.runBounded(n - 1),
                  Simulator::RunStatus::CycleBudgetExhausted);
        EXPECT_EQ(sim.stats().cycles, n - 1);
        EXPECT_FALSE(sim.halted());
    }
    // Budget N: Halt commits as exactly the N-th instruction.
    {
        Simulator sim(compiled.program, *compiled.module,
                      Fidelity::Threaded);
        sim.setInput(b->input);
        EXPECT_EQ(sim.runBounded(n), Simulator::RunStatus::Halted);
        EXPECT_EQ(sim.stats().cycles, n);
        EXPECT_TRUE(sim.halted());
    }
    // Budget N+1: slack changes nothing.
    {
        Simulator sim(compiled.program, *compiled.module,
                      Fidelity::Threaded);
        sim.setInput(b->input);
        EXPECT_EQ(sim.runBounded(n + 1), Simulator::RunStatus::Halted);
        EXPECT_EQ(sim.stats().cycles, n);
        EXPECT_TRUE(sim.halted());
    }

    // Chunked bounded runs (the tryRunProgram poll loop) accumulate to
    // the same final state as one unbounded run.
    {
        Simulator sim(compiled.program, *compiled.module,
                      Fidelity::Threaded);
        sim.setInput(b->input);
        long chunk = n / 7 + 1;
        Simulator::RunStatus st = Simulator::RunStatus::Halted;
        for (long bound = chunk; bound < n + chunk; bound += chunk) {
            st = sim.runBounded(bound);
            if (st == Simulator::RunStatus::Halted)
                break;
        }
        EXPECT_EQ(st, Simulator::RunStatus::Halted);
        EXPECT_EQ(sim.stats().cycles, n);
    }
}

// The translation counters report real work on a hot benchmark, and a
// reset clears the run-scoped state while traces survive.
TEST(ThreadedStatsCounters, TranslationHappensAndSurvivesReset)
{
    const Benchmark *b = findBenchmark("fir_256_64");
    ASSERT_NE(b, nullptr);
    CompileOptions opts;
    opts.mode = AllocMode::CB;
    auto compiled = compileSource(b->source, opts);

    Simulator sim(compiled.program, *compiled.module,
                  Fidelity::Threaded);
    sim.setInput(b->input);
    sim.run();
    long first_cycles = sim.stats().cycles;

    const ThreadedStats &ts = sim.threadedStats();
    EXPECT_GT(ts.blocksTranslated, 0);
    EXPECT_GT(ts.chainsPatched, 0);
    EXPECT_GT(ts.opsFused, 0);
    EXPECT_EQ(ts.deopts, 0);
    long translated = ts.blocksTranslated;

    // Re-run after reset: the trace cache is warm, so no new blocks
    // are translated, and the results are unchanged.
    sim.reset();
    sim.setInput(b->input);
    sim.run();
    EXPECT_EQ(sim.stats().cycles, first_cycles);
    EXPECT_EQ(sim.threadedStats().blocksTranslated, translated);
}

// The fidelity name round-trip covers every engine, and the dispatch
// mechanism reports one of the two supported strategies.
TEST(ThreadedNaming, FidelityNamesRoundTrip)
{
    ASSERT_EQ(allFidelities().size(), 3u);
    for (Fidelity f : allFidelities()) {
        auto back = fidelityFromName(fidelityName(f));
        ASSERT_TRUE(back.has_value()) << fidelityName(f);
        EXPECT_EQ(*back, f) << fidelityName(f);
    }
    EXPECT_EQ(fidelityFromName("threaded"), Fidelity::Threaded);
    EXPECT_FALSE(fidelityFromName("Threaded").has_value());
    EXPECT_FALSE(fidelityFromName("").has_value());
    EXPECT_FALSE(fidelityFromName("turbo").has_value());

    std::string d = ThreadedEngine::dispatchName();
    EXPECT_TRUE(d == "computed-goto" || d == "tail-switch") << d;
}

// Machine faults must carry the same message under threaded execution
// so harnesses classify them identically. The fault fires inside a hot
// loop, well past the translation threshold.
TEST(ThreadedFaults, FaultMessagesMatchFastPath)
{
    auto compiled = compileSource(R"(
        void main() {
            int d = 40;
            int acc = 0;
            for (int i = 0; i < 64; i++) {
                d = d - 1;
                acc += 1000 / d;
            }
            out(acc);
        }
    )");

    std::string fast_err;
    std::string thr_err;
    for (int pass = 0; pass < 2; ++pass) {
        Fidelity f = pass ? Fidelity::Threaded : Fidelity::Fast;
        Simulator sim(compiled.program, *compiled.module, f);
        try {
            sim.run();
            FAIL() << "expected division fault under "
                   << fidelityName(f);
        } catch (const UserError &e) {
            (pass ? thr_err : fast_err) = e.what();
        }
    }
    EXPECT_EQ(thr_err, fast_err);
    EXPECT_NE(thr_err.find("integer division by zero"),
              std::string::npos)
        << thr_err;
}

// The driver-level fidelity plumbing reaches the threaded engine.
TEST(ThreadedDriver, RunProgramThreadedFidelity)
{
    const Benchmark *b = findBenchmark("fir_256_64");
    ASSERT_NE(b, nullptr);
    CompileOptions opts;
    opts.mode = AllocMode::CB;
    auto compiled = compileSource(b->source, opts);

    auto ref = runProgram(compiled, b->input, 200'000'000,
                          Fidelity::Instrumented);
    auto thr = runProgram(compiled, b->input, 200'000'000,
                          Fidelity::Threaded);
    EXPECT_EQ(thr.stats.cycles, ref.stats.cycles);
    ASSERT_EQ(thr.output.size(), ref.output.size());
    for (std::size_t i = 0; i < ref.output.size(); ++i)
        EXPECT_EQ(thr.output[i].raw, ref.output[i].raw);
    EXPECT_TRUE(thr.engineDegradations.empty());

    RunOutcome outcome =
        tryRunProgram(compiled, b->input, 200'000'000,
                      Fidelity::Threaded);
    ASSERT_TRUE(outcome.ok) << outcome.error;
    EXPECT_EQ(outcome.result.stats.cycles, ref.stats.cycles);
}

} // namespace
} // namespace dsp

/**
 * @file
 * Benchmark-suite correctness: every benchmark, compiled under every
 * allocation mode, must reproduce its host-reference output exactly,
 * and the output must be identical across modes (data allocation is a
 * performance transformation, never a semantic one).
 */

#include <gtest/gtest.h>

#include "driver/compiler.hh"
#include "suite/suite.hh"

namespace dsp
{
namespace
{

struct Case
{
    const Benchmark *bench;
    AllocMode mode;
};

std::vector<Case>
allCases()
{
    std::vector<Case> cases;
    for (const Benchmark *b : allBenchmarks()) {
        for (AllocMode mode :
             {AllocMode::SingleBank, AllocMode::CB, AllocMode::CBDup,
              AllocMode::FullDup, AllocMode::Ideal}) {
            cases.push_back({b, mode});
        }
    }
    return cases;
}

std::string
modeIdent(AllocMode mode)
{
    switch (mode) {
      case AllocMode::SingleBank: return "SingleBank";
      case AllocMode::CB: return "CB";
      case AllocMode::CBDup: return "CBDup";
      case AllocMode::FullDup: return "FullDup";
      case AllocMode::Ideal: return "Ideal";
    }
    return "Unknown";
}

class SuiteCorrectness : public ::testing::TestWithParam<Case>
{
};

TEST_P(SuiteCorrectness, MatchesReference)
{
    const Case &c = GetParam();
    CompileOptions opts;
    opts.mode = c.mode;
    auto compiled = compileSource(c.bench->source, opts);
    auto run = runProgram(compiled, c.bench->input);

    ASSERT_EQ(run.output.size(), c.bench->expected.size())
        << c.bench->name;
    for (std::size_t i = 0; i < run.output.size(); ++i) {
        EXPECT_EQ(run.output[i].raw, c.bench->expected[i])
            << c.bench->name << " output word " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarksAllModes, SuiteCorrectness,
    ::testing::ValuesIn(allCases()), [](const auto &info) {
        return info.param.bench->name + "_" +
               modeIdent(info.param.mode);
    });

} // namespace
} // namespace dsp

/**
 * @file
 * Benchmark-suite inventory tests: the suite must contain exactly the
 * programs of Tables 1 and 2, with well-formed sources, inputs, and
 * golden outputs, and each benchmark must exhibit the structural
 * property its role in the evaluation depends on.
 */

#include <gtest/gtest.h>

#include "driver/compiler.hh"
#include "suite/suite.hh"

namespace dsp
{
namespace
{

TEST(SuiteMeta, Table1HasTwelveKernels)
{
    const auto &kernels = kernelBenchmarks();
    ASSERT_EQ(kernels.size(), 12u);
    const char *expected[] = {
        "fft_1024",     "fft_256",   "fir_256_64",   "fir_32_1",
        "iir_4_64",     "iir_1_1",   "latnrm_32_64", "latnrm_8_1",
        "lmsfir_32_64", "lmsfir_8_1", "mult_10_10",  "mult_4_4"};
    for (std::size_t i = 0; i < kernels.size(); ++i) {
        EXPECT_EQ(kernels[i].name, expected[i]);
        EXPECT_EQ(kernels[i].label, "k" + std::to_string(i + 1));
        EXPECT_EQ(kernels[i].kind, BenchKind::Kernel);
    }
}

TEST(SuiteMeta, Table2HasElevenApplications)
{
    const auto &apps = applicationBenchmarks();
    ASSERT_EQ(apps.size(), 11u);
    const char *expected[] = {"adpcm",        "lpc",
                              "spectral",     "edge_detect",
                              "compress",     "histogram",
                              "V32encode",    "G721MLencode",
                              "G721MLdecode", "G721WFencode",
                              "trellis"};
    for (std::size_t i = 0; i < apps.size(); ++i) {
        EXPECT_EQ(apps[i].name, expected[i]);
        EXPECT_EQ(apps[i].kind, BenchKind::Application);
        EXPECT_FALSE(apps[i].description.empty());
    }
}

TEST(SuiteMeta, LookupByName)
{
    EXPECT_NE(findBenchmark("lpc"), nullptr);
    EXPECT_NE(findBenchmark("fft_1024"), nullptr);
    EXPECT_EQ(findBenchmark("nonexistent"), nullptr);
    EXPECT_EQ(allBenchmarks().size(), 23u);
}

TEST(SuiteMeta, EveryBenchmarkHasGoldenOutput)
{
    for (const Benchmark *b : allBenchmarks()) {
        EXPECT_FALSE(b->source.empty()) << b->name;
        EXPECT_FALSE(b->expected.empty()) << b->name;
    }
}

TEST(SuiteMeta, LargeAndSmallKernelVariantsDiffer)
{
    // The large variant of each algorithm must do strictly more work.
    const std::pair<const char *, const char *> pairs[] = {
        {"fft_1024", "fft_256"},     {"fir_256_64", "fir_32_1"},
        {"iir_4_64", "iir_1_1"},     {"latnrm_32_64", "latnrm_8_1"},
        {"lmsfir_32_64", "lmsfir_8_1"}, {"mult_10_10", "mult_4_4"}};
    for (const auto &[big, small] : pairs) {
        CompileOptions opts;
        opts.mode = AllocMode::SingleBank;
        auto rb = runProgram(compileSource(findBenchmark(big)->source,
                                           opts),
                             findBenchmark(big)->input);
        auto rs = runProgram(compileSource(findBenchmark(small)->source,
                                           opts),
                             findBenchmark(small)->input);
        EXPECT_GT(rb.stats.cycles, rs.stats.cycles) << big;
    }
}

TEST(SuiteMeta, LpcRequiresDuplicationForItsGains)
{
    // The structural property Figure 8 hinges on: lpc's same-array
    // autocorrelation reads leave CB near the baseline while
    // duplication approaches Ideal.
    const Benchmark *lpc = findBenchmark("lpc");
    CompileOptions opts;

    opts.mode = AllocMode::SingleBank;
    long base =
        runProgram(compileSource(lpc->source, opts), lpc->input)
            .stats.cycles;
    opts.mode = AllocMode::CB;
    long cb = runProgram(compileSource(lpc->source, opts), lpc->input)
                  .stats.cycles;
    opts.mode = AllocMode::CBDup;
    long dup = runProgram(compileSource(lpc->source, opts), lpc->input)
                   .stats.cycles;
    opts.mode = AllocMode::Ideal;
    long ideal =
        runProgram(compileSource(lpc->source, opts), lpc->input)
            .stats.cycles;

    double cb_gain = 100.0 * (base - cb) / base;
    double dup_gain = 100.0 * (base - dup) / base;
    double ideal_gain = 100.0 * (base - ideal) / base;

    EXPECT_LT(cb_gain, 10.0);
    EXPECT_GT(dup_gain, 20.0);
    EXPECT_GE(dup_gain, ideal_gain - 3.0);
}

TEST(SuiteMeta, G721sShowNoMemoryParallelism)
{
    for (const char *name :
         {"G721MLencode", "G721MLdecode", "G721WFencode"}) {
        const Benchmark *b = findBenchmark(name);
        CompileOptions opts;
        opts.mode = AllocMode::SingleBank;
        long base =
            runProgram(compileSource(b->source, opts), b->input)
                .stats.cycles;
        opts.mode = AllocMode::Ideal;
        long ideal =
            runProgram(compileSource(b->source, opts), b->input)
                .stats.cycles;
        // Even a dual-ported memory buys (essentially) nothing.
        EXPECT_LT(100.0 * (base - ideal) / base, 1.0) << name;
    }
}

TEST(SuiteMeta, KernelsAllGainFromCb)
{
    for (const Benchmark &b : kernelBenchmarks()) {
        CompileOptions opts;
        opts.mode = AllocMode::SingleBank;
        long base = runProgram(compileSource(b.source, opts), b.input)
                        .stats.cycles;
        opts.mode = AllocMode::CB;
        long cb = runProgram(compileSource(b.source, opts), b.input)
                      .stats.cycles;
        EXPECT_LT(cb, base) << b.name;
    }
}

TEST(SuiteMeta, DuplicationOnlyWhereJustified)
{
    // Partial duplication fires for lpc and the few programs with
    // hot same-array read pairs; the rest must be untouched, which is
    // what keeps Table 3's average cost increase near 1.0.
    for (const Benchmark *b : allBenchmarks()) {
        CompileOptions opts;
        opts.mode = AllocMode::CBDup;
        auto compiled = compileSource(b->source, opts);
        if (b->name == "lpc") {
            EXPECT_FALSE(compiled.alloc.duplicated.empty()) << b->name;
        }
        for (DataObject *obj : compiled.alloc.duplicated) {
            EXPECT_GT(compiled.alloc.graph.duplicationBenefit(obj),
                      compiled.alloc.graph.storeWeight(obj))
                << b->name << "/" << obj->name;
        }
    }
}

} // namespace
} // namespace dsp

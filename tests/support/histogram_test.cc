/**
 * @file
 * LatencyHistogram unit tests: slot geometry (bucket boundaries and
 * the 1/64 relative-error contract), exact min/max tracking, the
 * negative and overflow clamps, merge, quantiles (exact in the linear
 * range, bounded-error above it), and concurrent recording.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "support/histogram.hh"
#include "support/telemetry.hh"

namespace dsp
{
namespace
{

using H = LatencyHistogram;

TEST(HistogramSlots, LinearRangeIsIdentity)
{
    // Below kSubBucketCount every value gets its own slot: quantiles
    // there are exact, which the serving tests rely on.
    for (std::int64_t v = 0; v < H::kSubBucketCount; ++v) {
        EXPECT_EQ(H::slotFor(v), static_cast<std::size_t>(v));
        EXPECT_EQ(H::slotLower(static_cast<std::size_t>(v)), v);
        EXPECT_EQ(H::slotUpper(static_cast<std::size_t>(v)), v);
    }
}

TEST(HistogramSlots, BoundariesTileTheRange)
{
    // Walking every slot must tile [0, kMaxValue] exactly: each
    // slot's lower bound is the previous slot's upper bound + 1.
    std::int64_t expectLower = 0;
    for (std::size_t s = 0; s < H::kSlotCount; ++s) {
        EXPECT_EQ(H::slotLower(s), expectLower) << "slot " << s;
        EXPECT_GE(H::slotUpper(s), H::slotLower(s)) << "slot " << s;
        expectLower = H::slotUpper(s) + 1;
    }
    EXPECT_EQ(H::slotUpper(H::kSlotCount - 1), H::kMaxValue);
}

TEST(HistogramSlots, EveryBoundaryMapsToItsOwnSlot)
{
    for (std::size_t s = 0; s < H::kSlotCount; ++s) {
        EXPECT_EQ(H::slotFor(H::slotLower(s)), s) << "slot " << s;
        EXPECT_EQ(H::slotFor(H::slotUpper(s)), s) << "slot " << s;
    }
}

TEST(HistogramSlots, RelativeErrorBounded)
{
    // The HdrHistogram contract: a slot's width never exceeds its
    // lower bound / kSubBucketHalf, i.e. ~1.6% relative error.
    for (std::size_t s = H::kSubBucketCount; s < H::kSlotCount; ++s) {
        std::int64_t width = H::slotUpper(s) - H::slotLower(s) + 1;
        EXPECT_LE(width, H::slotLower(s) / H::kSubBucketHalf + 1)
            << "slot " << s;
    }
}

TEST(Histogram, EmptyIsAllZero)
{
    H h;
    EXPECT_EQ(h.count(), 0);
    EXPECT_EQ(h.min(), 0);
    EXPECT_EQ(h.max(), 0);
    EXPECT_EQ(h.sum(), 0);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.quantile(0.5), 0);
    H::Summary s = h.summary();
    EXPECT_EQ(s.count, 0);
    EXPECT_EQ(s.p999, 0);
}

TEST(Histogram, MinMaxAreExactNotBucketed)
{
    H h;
    h.record(1'000'003); // lands in a wide slot
    h.record(999'983);
    EXPECT_EQ(h.min(), 999'983);
    EXPECT_EQ(h.max(), 1'000'003);
    EXPECT_EQ(h.sum(), 1'999'986);
}

TEST(Histogram, NegativeClampsToZero)
{
    H h;
    h.record(-5);
    h.record(INT64_MIN);
    EXPECT_EQ(h.count(), 2);
    EXPECT_EQ(h.min(), 0);
    EXPECT_EQ(h.max(), 0);
    EXPECT_EQ(h.sum(), 0);
    EXPECT_EQ(h.quantile(1.0), 0);
}

TEST(Histogram, OverflowClampsToMaxValue)
{
    H h;
    h.record(INT64_MAX);
    h.record(H::kMaxValue + 1);
    EXPECT_EQ(h.count(), 2);
    EXPECT_EQ(h.max(), H::kMaxValue);
    EXPECT_EQ(h.quantile(0.99), H::kMaxValue);
}

TEST(Histogram, QuantilesExactInLinearRange)
{
    // 1..50 once each: quantile(q) = ceil(q*50) exactly, because each
    // value below kSubBucketCount owns its slot.
    H h;
    for (std::int64_t v = 1; v <= 50; ++v)
        h.record(v);
    EXPECT_EQ(h.quantile(0.5), 25);
    EXPECT_EQ(h.quantile(0.9), 45);
    EXPECT_EQ(h.quantile(0.02), 1);
    EXPECT_EQ(h.quantile(1.0), 50);
    EXPECT_EQ(h.quantile(0.0), 1); // clamps to the first sample
    EXPECT_DOUBLE_EQ(h.mean(), 25.5);
}

TEST(Histogram, QuantilesBoundedErrorAboveLinearRange)
{
    H h;
    for (std::int64_t v = 1; v <= 100'000; ++v)
        h.record(v);
    // Each quantile must land within one sub-bucket (1/32 ≈ 3.2%
    // worst-case midpoint error) of the true value.
    for (double q : {0.5, 0.9, 0.99, 0.999}) {
        auto expected =
            static_cast<double>(static_cast<std::int64_t>(q * 100'000));
        auto got = static_cast<double>(h.quantile(q));
        EXPECT_NEAR(got, expected, expected / 16.0) << "q=" << q;
    }
    EXPECT_EQ(h.quantile(1.0), 100'000); // clamped into [min, max]
}

TEST(Histogram, SummaryQuantilesAreMonotone)
{
    H h;
    for (std::int64_t v = 0; v < 10'000; ++v)
        h.record((v * 7919) % 90'000);
    H::Summary s = h.summary();
    EXPECT_EQ(s.count, 10'000);
    EXPECT_LE(s.min, s.p50);
    EXPECT_LE(s.p50, s.p90);
    EXPECT_LE(s.p90, s.p99);
    EXPECT_LE(s.p99, s.p999);
    EXPECT_LE(s.p999, s.max);
}

TEST(Histogram, MergeAddsSlotwiseAndUnionsMinMax)
{
    H a, b;
    for (std::int64_t v = 1; v <= 10; ++v)
        a.record(v);
    for (std::int64_t v = 41; v <= 50; ++v)
        b.record(v);
    a.merge(b);
    EXPECT_EQ(a.count(), 20);
    EXPECT_EQ(a.min(), 1);
    EXPECT_EQ(a.max(), 50);
    EXPECT_EQ(a.quantile(0.5), 10);  // 10th of 20 samples
    EXPECT_EQ(a.quantile(0.75), 45); // 15th of 20 samples
    EXPECT_EQ(a.sum(), 55 + 455);
    // Merging an empty histogram is a no-op (its min sentinel must
    // not clobber a real min).
    H empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 20);
    EXPECT_EQ(a.min(), 1);
}

TEST(Histogram, ConcurrentRecordingLosesNothing)
{
    H h;
    constexpr int kThreads = 8;
    constexpr std::int64_t kPerThread = 100'000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&h, t] {
            for (std::int64_t i = 0; i < kPerThread; ++i)
                h.record((i + t) % 1000);
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(h.count(), kThreads * kPerThread);
    EXPECT_EQ(h.max(), 999);
    EXPECT_EQ(h.min(), 0);
    // Uniform over [0,1000): p50 within one linear... the range spans
    // past kSubBucketCount, so allow one sub-bucket of slack.
    EXPECT_NEAR(static_cast<double>(h.quantile(0.5)), 500.0, 32.0);
}

TEST(HistogramRegistry, GetReturnsStableReferences)
{
    HistogramRegistry reg;
    LatencyHistogram &a = reg.get("serve.latency.total");
    reg.record("serve.latency.total", 42);
    for (int i = 0; i < 100; ++i)
        reg.get("name." + std::to_string(i));
    EXPECT_EQ(&a, &reg.get("serve.latency.total"));
    EXPECT_EQ(a.count(), 1);
    EXPECT_EQ(a.max(), 42);
}

TEST(HistogramRegistry, FindDoesNotCreate)
{
    HistogramRegistry reg;
    EXPECT_EQ(reg.find("absent"), nullptr);
    reg.record("present", 7);
    ASSERT_NE(reg.find("present"), nullptr);
    EXPECT_EQ(reg.find("present")->count(), 1);
    EXPECT_EQ(reg.sorted().size(), 1u);
}

TEST(HistogramRegistry, SortedIsNameOrdered)
{
    HistogramRegistry reg;
    reg.record("b", 1);
    reg.record("a", 1);
    reg.record("c", 1);
    auto view = reg.sorted();
    ASSERT_EQ(view.size(), 3u);
    EXPECT_EQ(view[0].first, "a");
    EXPECT_EQ(view[1].first, "b");
    EXPECT_EQ(view[2].first, "c");
}

TEST(AmbientHistogram, RecordsOnlyWithSessionInstalled)
{
    recordLatencyUs("off.path", 123); // no session: must be a no-op
    TraceSession session;
    {
        ScopedTraceSession scope(session);
        recordLatencyUs("on.path", 456);
    }
    recordLatencyUs("off.again", 789);
    EXPECT_EQ(session.histograms().find("off.path"), nullptr);
    EXPECT_EQ(session.histograms().find("off.again"), nullptr);
    ASSERT_NE(session.histograms().find("on.path"), nullptr);
    EXPECT_EQ(session.histograms().find("on.path")->max(), 456);
}

} // namespace
} // namespace dsp

/**
 * @file
 * Minimal strict JSON acceptor shared by the machine-readable-output
 * tests (BENCH_sim.json, the Chrome trace, the stats document).
 *
 * Everything the repo writes for external tooling must strict-parse,
 * so every such test runs its document through this checker. It
 * accepts exactly the RFC-8259 grammar — notably `null` but never the
 * bare tokens "inf"/"nan" (the historical exporter bug class) — and
 * collects every string literal it decodes so tests can assert that
 * escaped content round-trips.
 */

#ifndef DSP_TESTS_SUPPORT_JSON_CHECKER_HH
#define DSP_TESTS_SUPPORT_JSON_CHECKER_HH

#include <cstring>
#include <sstream>
#include <string>
#include <vector>

namespace dsp
{
namespace testing
{

/** Minimal strict JSON acceptor. parse() returns false (with a
 *  position in @ref error) on anything outside the RFC grammar. */
class JsonChecker
{
  public:
    bool
    parse(const std::string &text)
    {
        s = &text;
        pos = 0;
        error.clear();
        seen.clear();
        if (!value())
            return false;
        skipWs();
        if (pos != s->size())
            return fail("trailing characters");
        return true;
    }

    /** Every string literal seen during the parse, unescaped. */
    const std::vector<std::string> &strings() const { return seen; }

    /** True if some decoded string literal equals @p want exactly. */
    bool
    sawString(const std::string &want) const
    {
        for (const std::string &str : seen)
            if (str == want)
                return true;
        return false;
    }

    std::string error;

  private:
    const std::string *s = nullptr;
    std::size_t pos = 0;
    std::vector<std::string> seen;

    bool
    fail(const std::string &what)
    {
        std::ostringstream os;
        os << what << " at byte " << pos;
        error = os.str();
        return false;
    }

    void
    skipWs()
    {
        while (pos < s->size() &&
               ((*s)[pos] == ' ' || (*s)[pos] == '\t' ||
                (*s)[pos] == '\n' || (*s)[pos] == '\r'))
            ++pos;
    }

    bool
    literal(const char *word)
    {
        std::size_t n = std::strlen(word);
        if (s->compare(pos, n, word) != 0)
            return fail("bad literal");
        pos += n;
        return true;
    }

    bool
    value()
    {
        skipWs();
        if (pos >= s->size())
            return fail("unexpected end");
        char c = (*s)[pos];
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return string(nullptr);
        if (c == 't')
            return literal("true");
        if (c == 'f')
            return literal("false");
        if (c == 'n')
            return literal("null");
        if (c == '-' || (c >= '0' && c <= '9'))
            return number();
        return fail("unexpected character");
    }

    bool
    object()
    {
        ++pos; // '{'
        skipWs();
        if (pos < s->size() && (*s)[pos] == '}') {
            ++pos;
            return true;
        }
        while (true) {
            skipWs();
            if (pos >= s->size() || (*s)[pos] != '"')
                return fail("expected object key");
            if (!string(nullptr))
                return false;
            skipWs();
            if (pos >= s->size() || (*s)[pos] != ':')
                return fail("expected ':'");
            ++pos;
            if (!value())
                return false;
            skipWs();
            if (pos < s->size() && (*s)[pos] == ',') {
                ++pos;
                continue;
            }
            if (pos < s->size() && (*s)[pos] == '}') {
                ++pos;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    array()
    {
        ++pos; // '['
        skipWs();
        if (pos < s->size() && (*s)[pos] == ']') {
            ++pos;
            return true;
        }
        while (true) {
            if (!value())
                return false;
            skipWs();
            if (pos < s->size() && (*s)[pos] == ',') {
                ++pos;
                continue;
            }
            if (pos < s->size() && (*s)[pos] == ']') {
                ++pos;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    string(std::string *out)
    {
        ++pos; // '"'
        std::string decoded;
        while (pos < s->size()) {
            char c = (*s)[pos];
            if (c == '"') {
                ++pos;
                seen.push_back(decoded);
                if (out)
                    *out = decoded;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("unescaped control character");
            if (c == '\\') {
                ++pos;
                if (pos >= s->size())
                    return fail("truncated escape");
                char e = (*s)[pos];
                switch (e) {
                  case '"': decoded += '"'; break;
                  case '\\': decoded += '\\'; break;
                  case '/': decoded += '/'; break;
                  case 'b': decoded += '\b'; break;
                  case 'f': decoded += '\f'; break;
                  case 'n': decoded += '\n'; break;
                  case 'r': decoded += '\r'; break;
                  case 't': decoded += '\t'; break;
                  case 'u':
                    if (pos + 4 >= s->size())
                        return fail("truncated \\u escape");
                    pos += 4;
                    decoded += '?';
                    break;
                  default:
                    return fail("bad escape");
                }
                ++pos;
                continue;
            }
            decoded += c;
            ++pos;
        }
        return fail("unterminated string");
    }

    bool
    number()
    {
        std::size_t start = pos;
        if ((*s)[pos] == '-')
            ++pos;
        // "inf"/"nan" never start with a digit, so a bare non-finite
        // value fails right here.
        if (pos >= s->size() || (*s)[pos] < '0' || (*s)[pos] > '9')
            return fail("bad number");
        while (pos < s->size() && (*s)[pos] >= '0' && (*s)[pos] <= '9')
            ++pos;
        if (pos < s->size() && (*s)[pos] == '.') {
            ++pos;
            if (pos >= s->size() || (*s)[pos] < '0' || (*s)[pos] > '9')
                return fail("bad fraction");
            while (pos < s->size() && (*s)[pos] >= '0' &&
                   (*s)[pos] <= '9')
                ++pos;
        }
        if (pos < s->size() &&
            ((*s)[pos] == 'e' || (*s)[pos] == 'E')) {
            ++pos;
            if (pos < s->size() &&
                ((*s)[pos] == '+' || (*s)[pos] == '-'))
                ++pos;
            if (pos >= s->size() || (*s)[pos] < '0' || (*s)[pos] > '9')
                return fail("bad exponent");
            while (pos < s->size() && (*s)[pos] >= '0' &&
                   (*s)[pos] <= '9')
                ++pos;
        }
        return pos > start;
    }
};

} // namespace testing
} // namespace dsp

#endif // DSP_TESTS_SUPPORT_JSON_CHECKER_HH

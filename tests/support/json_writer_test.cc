/**
 * @file
 * Pins the shared JSON layer (support/json): the Writer's
 * insertion-ordered, byte-deterministic output in both block styles,
 * and the strict parser bench_diff relies on — including that parsed
 * object members preserve document order, so a Writer document
 * round-trips order-exactly.
 */

#include <gtest/gtest.h>

#include <functional>
#include <sstream>

#include "support/diagnostics.hh"
#include "support/json.hh"
#include "support/json_checker.hh"

namespace dsp
{
namespace
{

std::string
write(const std::function<void(json::Writer &)> &emit)
{
    std::ostringstream os;
    json::Writer w(os);
    emit(w);
    return os.str();
}

TEST(JsonWriter, KeysKeepInsertionOrder)
{
    // Deliberately non-alphabetical: the writer must not sort.
    std::string doc = write([](json::Writer &w) {
        w.beginObject();
        w.field("zebra", 1);
        w.field("alpha", 2);
        w.field("mid", 3);
        w.endObject();
    });
    json::Value v = json::parse(doc);
    ASSERT_EQ(v.members.size(), 3u);
    EXPECT_EQ(v.members[0].first, "zebra");
    EXPECT_EQ(v.members[1].first, "alpha");
    EXPECT_EQ(v.members[2].first, "mid");
}

TEST(JsonWriter, OutputIsByteDeterministic)
{
    auto emit = [](json::Writer &w) {
        w.beginObject();
        w.field("n", 3.25);
        w.key("rows").beginArray();
        w.beginObject(json::Writer::Block::Inline);
        w.field("name", "a");
        w.field("count", 1L);
        w.endObject();
        w.endArray();
        w.endObject();
    };
    EXPECT_EQ(write(emit), write(emit));
}

TEST(JsonWriter, IndentedAndInlineFormatsArePinned)
{
    std::string doc = write([](json::Writer &w) {
        w.beginObject();
        w.field("a", 1);
        w.key("row").beginObject(json::Writer::Block::Inline);
        w.field("x", 2);
        w.field("y", "z");
        w.endObject();
        w.endObject();
    });
    EXPECT_EQ(doc, "{\n"
                   "  \"a\": 1,\n"
                   "  \"row\": {\"x\": 2, \"y\": \"z\"}\n"
                   "}");
}

TEST(JsonWriter, EmptyBlocksCollapse)
{
    EXPECT_EQ(write([](json::Writer &w) {
                  w.beginObject();
                  w.endObject();
              }),
              "{}");
    EXPECT_EQ(write([](json::Writer &w) {
                  w.beginObject();
                  w.key("rows").beginArray();
                  w.endArray();
                  w.endObject();
              }),
              "{\n  \"rows\": []\n}");
}

TEST(JsonWriter, ScalarsAreEscapedAndGuarded)
{
    std::string doc = write([](json::Writer &w) {
        w.beginObject();
        w.field("quote", "a\"b\\c\n");
        w.field("inf", 1.0 / 0.0); // must become null, never "inf"
        w.field("flag", true);
        w.key("none").null();
        w.endObject();
    });
    testing::JsonChecker checker;
    EXPECT_TRUE(checker.parse(doc)) << checker.error;
    EXPECT_TRUE(checker.sawString("a\"b\\c\n"));
    EXPECT_NE(doc.find("\"inf\": null"), std::string::npos);
    EXPECT_EQ(doc.find("nan"), std::string::npos);
}

TEST(JsonParse, RoundTripsValuesAndMemberOrder)
{
    std::string doc = write([](json::Writer &w) {
        w.beginObject();
        w.field("suite", "fig7");
        w.field("threads", 4);
        w.key("flags").beginObject(json::Writer::Block::Inline);
        w.field("resilient", true);
        w.field("fidelity", "fast");
        w.endObject();
        w.key("cycles").beginArray(json::Writer::Block::Inline);
        w.value(10L);
        w.value(-3L);
        w.value(2.5);
        w.endArray();
        w.endObject();
    });
    json::Value v = json::parse(doc);
    EXPECT_EQ(v.stringAt("suite"), "fig7");
    EXPECT_EQ(v.longAt("threads"), 4);
    const json::Value *flags = v.find("flags");
    ASSERT_NE(flags, nullptr);
    ASSERT_EQ(flags->members.size(), 2u);
    EXPECT_EQ(flags->members[0].first, "resilient");
    EXPECT_TRUE(flags->members[0].second.boolean);
    EXPECT_EQ(flags->members[1].first, "fidelity");
    const json::Value *cycles = v.find("cycles");
    ASSERT_NE(cycles, nullptr);
    ASSERT_EQ(cycles->items.size(), 3u);
    EXPECT_EQ(cycles->items[0].number, 10.0);
    EXPECT_EQ(cycles->items[1].number, -3.0);
    EXPECT_EQ(cycles->items[2].number, 2.5);
}

TEST(JsonParse, AcceptsEscapesAndNull)
{
    json::Value v = json::parse(
        "{\"s\": \"a\\u0041\\n\", \"n\": null, \"e\": 1e3}");
    EXPECT_EQ(v.stringAt("s"), "aA\n");
    ASSERT_NE(v.find("n"), nullptr);
    EXPECT_TRUE(v.find("n")->isNull());
    EXPECT_EQ(v.numberAt("e"), 1000.0);
}

TEST(JsonParse, RejectsMalformedInputWithBytePosition)
{
    const char *bad[] = {
        "{\"a\": 1,}",       // trailing comma
        "{\"a\": inf}",      // bare non-finite token
        "{\"a\": 01}",       // leading zero
        "{\"a\": 1} tail",   // trailing garbage
        "{\"a\" 1}",         // missing colon
        "\"unterminated",    // unterminated string
        "",                  // empty document
    };
    for (const char *text : bad) {
        try {
            json::parse(text);
            FAIL() << "accepted: " << text;
        } catch (const UserError &e) {
            EXPECT_NE(std::string(e.what()).find(
                          "json parse error at byte"),
                      std::string::npos)
                << e.what();
        }
    }
}

} // namespace
} // namespace dsp

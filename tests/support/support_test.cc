/**
 * @file
 * Support-library tests: diagnostics, string helpers, and the
 * suite-generation utilities.
 */

#include <gtest/gtest.h>

#include <atomic>

#include "minic/lexer.hh"
#include "support/diagnostics.hh"
#include "support/job_pool.hh"
#include "support/string_utils.hh"
#include "suite/gen.hh"

namespace dsp
{
namespace
{

TEST(Diagnostics, PanicThrowsInternalError)
{
    EXPECT_THROW(panic("broken: ", 42), InternalError);
    try {
        panic("value ", 7, " bad");
    } catch (const InternalError &e) {
        EXPECT_STREQ(e.what(), "panic: value 7 bad");
    }
}

TEST(Diagnostics, FatalThrowsUserError)
{
    EXPECT_THROW(fatal("user mistake"), UserError);
}

TEST(Diagnostics, RequirePassesAndFails)
{
    EXPECT_NO_THROW(require(true, "fine"));
    EXPECT_THROW(require(false, "nope"), InternalError);
}

TEST(Diagnostics, SourceLocFormatting)
{
    SourceLoc unknown;
    EXPECT_FALSE(unknown.known());
    EXPECT_EQ(unknown.str(), "<unknown>");
    SourceLoc loc{12, 7};
    EXPECT_TRUE(loc.known());
    EXPECT_EQ(loc.str(), "12:7");
}

TEST(StringUtils, SplitAndJoin)
{
    EXPECT_EQ(splitString("a,b,,c", ','),
              (std::vector<std::string>{"a", "b", "", "c"}));
    EXPECT_EQ(splitString("", ','), (std::vector<std::string>{""}));
    EXPECT_EQ(joinStrings({"x", "y", "z"}, ", "), "x, y, z");
    EXPECT_EQ(joinStrings({}, ","), "");
}

TEST(StringUtils, Padding)
{
    EXPECT_EQ(padLeft("ab", 5), "   ab");
    EXPECT_EQ(padRight("ab", 5), "ab   ");
    EXPECT_EQ(padLeft("abcdef", 3), "abcdef");
}

TEST(StringUtils, FixedAndPrefix)
{
    EXPECT_EQ(fixed(3.14159, 2), "3.14");
    EXPECT_EQ(fixed(-0.5, 1), "-0.5");
    EXPECT_TRUE(startsWith("--mode=cb", "--mode="));
    EXPECT_FALSE(startsWith("-m", "--mode="));
}

TEST(JobPool, RunsEverySubmittedJob)
{
    std::atomic<int> sum{0};
    JobPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4);
    for (int i = 1; i <= 100; ++i)
        pool.submit([&sum, i] { sum += i; });
    pool.wait();
    EXPECT_EQ(sum.load(), 5050);
}

TEST(JobPool, WaitIsReusable)
{
    std::atomic<int> count{0};
    JobPool pool(2);
    pool.submit([&] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
    pool.submit([&] { ++count; });
    pool.submit([&] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 3);
}

TEST(JobPool, DefaultsToHardwareConcurrency)
{
    EXPECT_GE(JobPool::defaultThreadCount(), 1);
    JobPool pool;
    EXPECT_EQ(pool.threadCount(), JobPool::defaultThreadCount());
}

TEST(JobPool, DestructorDrainsPendingJobs)
{
    std::atomic<int> count{0};
    {
        JobPool pool(1);
        for (int i = 0; i < 16; ++i)
            pool.submit([&] { ++count; });
    }
    EXPECT_EQ(count.load(), 16);
}

TEST(SuiteGen, RngIsDeterministic)
{
    suitegen::Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    suitegen::Rng c(42);
    for (int i = 0; i < 100; ++i) {
        int v = c.nextInt(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
    suitegen::Rng d(7);
    for (int i = 0; i < 100; ++i) {
        float f = d.nextFloat();
        EXPECT_GE(f, -1.0f);
        EXPECT_LT(f, 1.0f);
    }
}

TEST(SuiteGen, FloatLiteralsRoundTripThroughTheLexer)
{
    // Every generated float literal must lex back to the same bits —
    // this is what makes suite coefficients bit-exact.
    suitegen::Rng rng(0xBEEF);
    for (int i = 0; i < 200; ++i) {
        float f = rng.nextFloat() * 100.0f;
        std::string lit = suitegen::floatLit(f < 0 ? -f : f);
        auto toks = lexSource(lit);
        ASSERT_EQ(toks[0].kind, Tok::FloatLit) << lit;
        EXPECT_EQ(suitegen::bitsOf(toks[0].floatValue),
                  suitegen::bitsOf(f < 0 ? -f : f))
            << lit;
    }
    // Special shapes.
    EXPECT_EQ(suitegen::floatLit(1.0f), "1.0");
    EXPECT_EQ(suitegen::floatLit(0.0f), "0.0");
}

TEST(SuiteGen, ExpandSubstitutesAllOccurrences)
{
    std::string out = suitegen::expand(
        "${A} + ${B} = ${A}${B}", {{"A", "1"}, {"B", "2"}});
    EXPECT_EQ(out, "1 + 2 = 12");
}

TEST(SuiteGen, ListFormatting)
{
    EXPECT_EQ(suitegen::intList({1, -2, 3}), "{1, -2, 3}");
    EXPECT_EQ(suitegen::intList({}), "{}");
    std::string fl = suitegen::floatList({0.5f, 2.0f});
    EXPECT_EQ(fl, "{0.5, 2.0}");
}

} // namespace
} // namespace dsp

/**
 * @file
 * Support-library tests: diagnostics, string helpers, and the
 * suite-generation utilities.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <type_traits>

#include "minic/lexer.hh"
#include "support/diagnostics.hh"
#include "support/fault_injection.hh"
#include "support/job_pool.hh"
#include "support/string_utils.hh"
#include "suite/gen.hh"

namespace dsp
{
namespace
{

TEST(Diagnostics, PanicThrowsInternalError)
{
    EXPECT_THROW(panic("broken: ", 42), InternalError);
    try {
        panic("value ", 7, " bad");
    } catch (const InternalError &e) {
        EXPECT_STREQ(e.what(), "panic: value 7 bad");
    }
}

TEST(Diagnostics, FatalThrowsUserError)
{
    EXPECT_THROW(fatal("user mistake"), UserError);
}

TEST(Diagnostics, RequirePassesAndFails)
{
    EXPECT_NO_THROW(require(true, "fine"));
    EXPECT_THROW(require(false, "nope"), InternalError);
}

TEST(Diagnostics, SourceLocFormatting)
{
    SourceLoc unknown;
    EXPECT_FALSE(unknown.known());
    EXPECT_EQ(unknown.str(), "<unknown>");
    SourceLoc loc{12, 7};
    EXPECT_TRUE(loc.known());
    EXPECT_EQ(loc.str(), "12:7");
}

TEST(StringUtils, SplitAndJoin)
{
    EXPECT_EQ(splitString("a,b,,c", ','),
              (std::vector<std::string>{"a", "b", "", "c"}));
    EXPECT_EQ(splitString("", ','), (std::vector<std::string>{""}));
    EXPECT_EQ(joinStrings({"x", "y", "z"}, ", "), "x, y, z");
    EXPECT_EQ(joinStrings({}, ","), "");
}

TEST(StringUtils, Padding)
{
    EXPECT_EQ(padLeft("ab", 5), "   ab");
    EXPECT_EQ(padRight("ab", 5), "ab   ");
    EXPECT_EQ(padLeft("abcdef", 3), "abcdef");
}

TEST(StringUtils, FixedAndPrefix)
{
    EXPECT_EQ(fixed(3.14159, 2), "3.14");
    EXPECT_EQ(fixed(-0.5, 1), "-0.5");
    EXPECT_TRUE(startsWith("--mode=cb", "--mode="));
    EXPECT_FALSE(startsWith("-m", "--mode="));
}

TEST(JobPool, RunsEverySubmittedJob)
{
    std::atomic<int> sum{0};
    JobPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4);
    for (int i = 1; i <= 100; ++i)
        pool.submit([&sum, i] { sum += i; });
    pool.wait();
    EXPECT_EQ(sum.load(), 5050);
}

TEST(JobPool, WaitIsReusable)
{
    std::atomic<int> count{0};
    JobPool pool(2);
    pool.submit([&] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
    pool.submit([&] { ++count; });
    pool.submit([&] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 3);
}

TEST(JobPool, DefaultsToHardwareConcurrency)
{
    EXPECT_GE(JobPool::defaultThreadCount(), 1);
    JobPool pool;
    EXPECT_EQ(pool.threadCount(), JobPool::defaultThreadCount());
}

TEST(JobPool, DestructorDrainsPendingJobs)
{
    std::atomic<int> count{0};
    {
        JobPool pool(1);
        for (int i = 0; i < 16; ++i)
            pool.submit([&] { ++count; });
    }
    EXPECT_EQ(count.load(), 16);
}

TEST(DiagnosticEngine, AccumulatesAndFormats)
{
    DiagnosticEngine engine;
    engine.error(SourceLoc{12, 7}, "parse", "expected ", "';'");
    engine.warning(SourceLoc{}, "driver", "degraded to SingleBank");
    engine.note(SourceLoc{12, 7}, "parse", "opened here");

    ASSERT_EQ(engine.diagnostics().size(), 3u);
    EXPECT_EQ(engine.errorCount(), 1);
    EXPECT_TRUE(engine.hasErrors());
    EXPECT_EQ(engine.diagnostics()[0].str(),
              "12:7: error: expected ';' (parse)");
    EXPECT_EQ(engine.diagnostics()[1].str(),
              "warning: degraded to SingleBank (driver)");
    EXPECT_NE(engine.summary().find("note: opened here"),
              std::string::npos);
}

TEST(DiagnosticEngine, SinkSeesEveryDiagnostic)
{
    DiagnosticEngine engine;
    std::vector<std::string> seen;
    engine.setSink([&](const Diagnostic &d) { seen.push_back(d.str()); });
    engine.error(SourceLoc{1, 1}, "sema", "bad type");
    engine.warning(SourceLoc{}, "driver", "fallback");
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_NE(seen[0].find("bad type"), std::string::npos);
}

TEST(DiagnosticEngine, ErrorCapThrowsTooManyErrors)
{
    DiagnosticEngine engine(3);
    EXPECT_EQ(engine.errorLimit(), 3);
    engine.error(SourceLoc{}, "parse", "e1");
    engine.error(SourceLoc{}, "parse", "e2");
    engine.error(SourceLoc{}, "parse", "e3");
    // Warnings and notes never count toward the cap.
    EXPECT_NO_THROW(engine.warning(SourceLoc{}, "parse", "w"));
    EXPECT_NO_THROW(engine.note(SourceLoc{}, "parse", "n"));
    EXPECT_THROW(engine.error(SourceLoc{}, "parse", "e4"), TooManyErrors);
    // TooManyErrors is a UserError: bad input, not a library bug.
    EXPECT_THROW(engine.error(SourceLoc{}, "parse", "e5"), UserError);
    EXPECT_EQ(engine.errorCount(), 3);
}

TEST(FaultInjection, NoAmbientPlanIsFree)
{
    ASSERT_EQ(ambientFaultPlan(), nullptr);
    EXPECT_FALSE(checkFaultSite("opt.dce"));
}

TEST(FaultInjection, ArmedSiteFiresOnExactHitThenDisarms)
{
    FaultPlan plan;
    plan.arm("opt.dce", 2);
    ScopedFaultPlan scope(plan);

    EXPECT_FALSE(checkFaultSite("opt.dce")); // hit 1: not yet
    EXPECT_THROW(checkFaultSite("opt.dce"), InjectedFault); // hit 2
    EXPECT_FALSE(checkFaultSite("opt.dce")); // one-shot: disarmed
    EXPECT_TRUE(plan.fired("opt.dce"));
    EXPECT_EQ(plan.hits("opt.dce"), 3u);
    EXPECT_EQ(plan.totalFired(), 1u);
}

TEST(FaultInjection, CorruptIrFaultReturnsTrueInsteadOfThrowing)
{
    FaultPlan plan;
    plan.arm("opt.constfold", 1, FaultKind::CorruptIr);
    ScopedFaultPlan scope(plan);
    EXPECT_TRUE(checkFaultSite("opt.constfold"));
    EXPECT_FALSE(checkFaultSite("opt.constfold"));
}

TEST(FaultInjection, InjectedFaultIsAnInternalErrorAndNamesItsSite)
{
    FaultPlan plan;
    plan.arm("backend.regalloc");
    ScopedFaultPlan scope(plan);
    try {
        checkFaultSite("backend.regalloc");
        FAIL() << "expected InjectedFault";
    } catch (const InjectedFault &e) {
        EXPECT_EQ(e.site(), "backend.regalloc");
        EXPECT_NE(std::string(e.what()).find("backend.regalloc"),
                  std::string::npos);
    }
    static_assert(std::is_base_of_v<InternalError, InjectedFault>);
}

TEST(FaultInjection, ScopedPlanRestoresOuterPlanOnExit)
{
    FaultPlan outer, inner;
    ScopedFaultPlan outerScope(outer);
    EXPECT_EQ(ambientFaultPlan(), &outer);
    {
        ScopedFaultPlan innerScope(inner);
        EXPECT_EQ(ambientFaultPlan(), &inner);
    }
    EXPECT_EQ(ambientFaultPlan(), &outer);
}

TEST(FaultInjection, SeededRandomPlanIsDeterministic)
{
    FaultPlan a, b, c;
    a.seedRandom(1234, 0.5);
    b.seedRandom(1234, 0.5);
    c.seedRandom(5678, 0.5);
    EXPECT_EQ(a.armedSites(), b.armedSites());
    EXPECT_FALSE(a.armedSites().empty());
    // A different seed should (for these constants) pick another set.
    EXPECT_NE(a.armedSites(), c.armedSites());
}

TEST(FaultInjection, SiteRegistryCoversEveryPipelineStage)
{
    const auto &sites = compileFaultSites();
    EXPECT_GE(sites.size(), 16u);
    auto has = [&](const char *s) {
        return std::find(sites.begin(), sites.end(), s) != sites.end();
    };
    EXPECT_TRUE(has("opt.dce"));
    EXPECT_TRUE(has("alloc.partition"));
    EXPECT_TRUE(has("backend.regalloc"));
    EXPECT_TRUE(has("mcverify"));
}

TEST(JobPool, ExceptionEscapingJobRethrownFromWait)
{
    JobPool pool(2);
    std::atomic<int> ran{0};
    pool.submit([&] {
        ++ran;
        throw UserError("job 0 failed");
    });
    pool.submit([&] { ++ran; });
    try {
        pool.wait();
        FAIL() << "expected UserError from wait()";
    } catch (const UserError &e) {
        EXPECT_STREQ(e.what(), "job 0 failed");
    }
    EXPECT_EQ(ran.load(), 2); // the healthy job still ran
    // The error was consumed: the pool is reusable.
    pool.submit([&] { ++ran; });
    EXPECT_NO_THROW(pool.wait());
    EXPECT_EQ(ran.load(), 3);
}

TEST(JobPool, FirstErrorWinsAcrossManyFailingJobs)
{
    JobPool pool(1); // serial: deterministic first failure
    for (int i = 0; i < 5; ++i)
        pool.submit([i] { fatal("failure ", i); });
    try {
        pool.wait();
        FAIL() << "expected UserError";
    } catch (const UserError &e) {
        EXPECT_STREQ(e.what(), "failure 0");
    }
}

TEST(JobPool, CancelDiscardsQueuedJobsAndFlagsRunningOnes)
{
    JobPool pool(1);
    std::atomic<int> ran{0};
    std::atomic<bool> sawCancel{false};
    std::atomic<bool> started{false};
    pool.submit(
        [&](JobContext &ctx) {
            started = true;
            ++ran;
            while (!ctx.cancelled())
                std::this_thread::sleep_for(std::chrono::milliseconds(1));
            sawCancel = true;
        },
        JobLimits{});
    for (int i = 0; i < 8; ++i)
        pool.submit([&] { ++ran; });
    while (!started)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    pool.cancel();
    pool.wait();
    EXPECT_TRUE(sawCancel.load());
    EXPECT_EQ(ran.load(), 1); // the 8 queued jobs were discarded
}

TEST(JobPool, TimeoutRetriesOnceThenSurfacesJobTimeout)
{
    JobPool pool(1);
    std::atomic<int> attempts{0};
    JobLimits limits;
    limits.timeoutSeconds = 0.01;
    limits.retries = 1;
    pool.submit(
        [&](JobContext &ctx) {
            attempts++;
            EXPECT_EQ(ctx.attempt(), attempts.load() - 1);
            EXPECT_EQ(ctx.timeoutSeconds(), 0.01);
            // Burn past the deadline, then hit a checkpoint.
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            EXPECT_TRUE(ctx.expired());
            ctx.checkpoint(); // throws JobTimeout
            FAIL() << "checkpoint should have thrown";
        },
        limits);
    EXPECT_THROW(pool.wait(), JobTimeout);
    EXPECT_EQ(attempts.load(), 2); // initial attempt + one retry
}

TEST(JobPool, RetrySucceedsWhenSecondAttemptMeetsDeadline)
{
    JobPool pool(1);
    std::atomic<int> attempts{0};
    JobLimits limits;
    limits.timeoutSeconds = 5.0; // generous; attempt 0 fakes a timeout
    limits.retries = 1;
    pool.submit(
        [&](JobContext &ctx) {
            if (attempts++ == 0)
                throw JobTimeout("simulated slow first attempt");
            EXPECT_EQ(ctx.attempt(), 1);
        },
        limits);
    EXPECT_NO_THROW(pool.wait());
    EXPECT_EQ(attempts.load(), 2);
}

TEST(JobPool, WaitReportsCancellationAndDroppedJobs)
{
    // Cancel observability: a truncated sweep must be visible to the
    // caller, not silently indistinguishable from a complete one.
    JobPool pool(1);
    std::atomic<bool> started{false};
    pool.submit(
        [&](JobContext &ctx) {
            started = true;
            while (!ctx.cancelled())
                std::this_thread::sleep_for(std::chrono::milliseconds(1));
        },
        JobLimits{});
    for (int i = 0; i < 5; ++i)
        pool.submit([] {});
    while (!started)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    // cancel() reports what THIS call dropped...
    EXPECT_EQ(pool.cancel(), 5);
    // ...a second cancel finds nothing left to drop...
    EXPECT_EQ(pool.cancel(), 0);
    // ...and wait() reports the batch total.
    WaitStatus status = pool.wait();
    EXPECT_TRUE(status.cancelled);
    EXPECT_EQ(status.dropped, 5);
    EXPECT_FALSE(status.complete());

    // The evidence is cleared with the batch: the pool is reusable
    // and the next wait() reports a complete run.
    std::atomic<int> ran{0};
    pool.submit([&] { ++ran; });
    WaitStatus next = pool.wait();
    EXPECT_TRUE(next.complete());
    EXPECT_FALSE(next.cancelled);
    EXPECT_EQ(next.dropped, 0);
    EXPECT_EQ(ran.load(), 1);
}

TEST(JobPool, CompleteBatchReportsComplete)
{
    JobPool pool(2);
    for (int i = 0; i < 8; ++i)
        pool.submit([] {});
    WaitStatus status = pool.wait();
    EXPECT_TRUE(status.complete());
    EXPECT_FALSE(status.cancelled);
    EXPECT_EQ(status.dropped, 0);
}

TEST(JobPool, DestructorSwallowsUnobservedErrors)
{
    std::atomic<int> ran{0};
    {
        JobPool pool(1);
        pool.submit([&] {
            ++ran;
            throw UserError("never observed");
        });
        // No wait(): destructor must drain and not terminate.
    }
    EXPECT_EQ(ran.load(), 1);
}

TEST(SuiteGen, RngIsDeterministic)
{
    suitegen::Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    suitegen::Rng c(42);
    for (int i = 0; i < 100; ++i) {
        int v = c.nextInt(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
    suitegen::Rng d(7);
    for (int i = 0; i < 100; ++i) {
        float f = d.nextFloat();
        EXPECT_GE(f, -1.0f);
        EXPECT_LT(f, 1.0f);
    }
}

TEST(SuiteGen, FloatLiteralsRoundTripThroughTheLexer)
{
    // Every generated float literal must lex back to the same bits —
    // this is what makes suite coefficients bit-exact.
    suitegen::Rng rng(0xBEEF);
    for (int i = 0; i < 200; ++i) {
        float f = rng.nextFloat() * 100.0f;
        std::string lit = suitegen::floatLit(f < 0 ? -f : f);
        auto toks = lexSource(lit);
        ASSERT_EQ(toks[0].kind, Tok::FloatLit) << lit;
        EXPECT_EQ(suitegen::bitsOf(toks[0].floatValue),
                  suitegen::bitsOf(f < 0 ? -f : f))
            << lit;
    }
    // Special shapes.
    EXPECT_EQ(suitegen::floatLit(1.0f), "1.0");
    EXPECT_EQ(suitegen::floatLit(0.0f), "0.0");
}

TEST(SuiteGen, ExpandSubstitutesAllOccurrences)
{
    std::string out = suitegen::expand(
        "${A} + ${B} = ${A}${B}", {{"A", "1"}, {"B", "2"}});
    EXPECT_EQ(out, "1 + 2 = 12");
}

TEST(SuiteGen, ListFormatting)
{
    EXPECT_EQ(suitegen::intList({1, -2, 3}), "{1, -2, 3}");
    EXPECT_EQ(suitegen::intList({}), "{}");
    std::string fl = suitegen::floatList({0.5f, 2.0f});
    EXPECT_EQ(fl, "{0.5, 2.0}");
}

} // namespace
} // namespace dsp

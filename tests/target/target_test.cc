/**
 * @file
 * Target-model unit tests: functional-unit classification, register
 * file ABI layout, machine configuration arithmetic, and the assembly
 * printer.
 */

#include <gtest/gtest.h>

#include <set>

#include "target/target_desc.hh"
#include "target/vliw.hh"

namespace dsp
{
namespace
{

Op
makeOp(Opcode opc, RegClass dst_cls = RegClass::Int)
{
    Op op(opc);
    op.dst = VReg(dst_cls, 0);
    return op;
}

TEST(TargetDesc, FuKindClassification)
{
    EXPECT_EQ(fuKindOf(makeOp(Opcode::Jmp)), FuKind::PCU);
    EXPECT_EQ(fuKindOf(makeOp(Opcode::Bt)), FuKind::PCU);
    EXPECT_EQ(fuKindOf(makeOp(Opcode::Call)), FuKind::PCU);
    EXPECT_EQ(fuKindOf(makeOp(Opcode::Ret)), FuKind::PCU);
    EXPECT_EQ(fuKindOf(makeOp(Opcode::Halt)), FuKind::PCU);

    EXPECT_EQ(fuKindOf(makeOp(Opcode::Ld)), FuKind::MU);
    EXPECT_EQ(fuKindOf(makeOp(Opcode::StF)), FuKind::MU);
    EXPECT_EQ(fuKindOf(makeOp(Opcode::LdA, RegClass::Addr)), FuKind::MU);
    EXPECT_EQ(fuKindOf(makeOp(Opcode::In)), FuKind::MU);
    EXPECT_EQ(fuKindOf(makeOp(Opcode::OutF)), FuKind::MU);

    EXPECT_EQ(fuKindOf(makeOp(Opcode::Lea, RegClass::Addr)), FuKind::AU);
    EXPECT_EQ(fuKindOf(makeOp(Opcode::AAddI, RegClass::Addr)), FuKind::AU);

    EXPECT_EQ(fuKindOf(makeOp(Opcode::Add)), FuKind::DU);
    EXPECT_EQ(fuKindOf(makeOp(Opcode::Mac)), FuKind::DU);
    EXPECT_EQ(fuKindOf(makeOp(Opcode::CmpLT)), FuKind::DU);
    EXPECT_EQ(fuKindOf(makeOp(Opcode::MovI)), FuKind::DU);

    EXPECT_EQ(fuKindOf(makeOp(Opcode::FAdd, RegClass::Float)),
              FuKind::FPU);
    EXPECT_EQ(fuKindOf(makeOp(Opcode::FMac, RegClass::Float)),
              FuKind::FPU);
    EXPECT_EQ(fuKindOf(makeOp(Opcode::MovF, RegClass::Float)),
              FuKind::FPU);
    // Float compares produce an int result but run on the FPU.
    EXPECT_EQ(fuKindOf(makeOp(Opcode::FCmpLT)), FuKind::FPU);
    EXPECT_EQ(fuKindOf(makeOp(Opcode::IToF, RegClass::Float)),
              FuKind::FPU);
    EXPECT_EQ(fuKindOf(makeOp(Opcode::FToI)), FuKind::FPU);
}

TEST(TargetDesc, CopyRunsOnItsClassUnit)
{
    EXPECT_EQ(fuKindOf(makeOp(Opcode::Copy, RegClass::Int)), FuKind::DU);
    EXPECT_EQ(fuKindOf(makeOp(Opcode::Copy, RegClass::Float)),
              FuKind::FPU);
    EXPECT_EQ(fuKindOf(makeOp(Opcode::Copy, RegClass::Addr)), FuKind::AU);
}

TEST(TargetDesc, AbiRegistersAreDistinctAndPhysical)
{
    // Integer file: ret, args, scratches, and the allocatable pool must
    // not overlap.
    std::set<int> ints = {regs::IntRet, regs::IntScratch0,
                          regs::IntScratch1, regs::IntScratch2};
    for (int i = 0; i < regs::IntArgCount; ++i)
        ints.insert(regs::IntArg0 + i);
    EXPECT_EQ(ints.size(), 4u + regs::IntArgCount);
    for (int r : ints) {
        EXPECT_GE(r, 0);
        EXPECT_LT(r, regs::IntAllocFirst);
    }
    EXPECT_LE(regs::IntAllocLast, regs::PerClass - 1);

    // Address file: every special register is distinct.
    std::set<int> addrs = {0,
                           regs::AddrScratch0,
                           regs::AddrScratch1,
                           regs::AddrLink,
                           regs::AddrSpX,
                           regs::AddrSpY};
    for (int i = 0; i < regs::AddrArgCount; ++i)
        addrs.insert(regs::AddrArg0 + i);
    EXPECT_EQ(addrs.size(), 6u + regs::AddrArgCount);
    for (int r : addrs) {
        EXPECT_GE(r, 0);
        EXPECT_LT(r, regs::AddrAllocFirst);
    }
    EXPECT_LE(regs::AddrAllocLast, regs::PerClass - 1);

    EXPECT_EQ(regs::FirstVirtual, regs::PerClass);
}

TEST(TargetVliw, ConfigAddressArithmetic)
{
    MachineConfig config;
    config.bankWords = 1024;
    EXPECT_EQ(config.xBase(), 0);
    EXPECT_EQ(config.yBase(), 1024);
    EXPECT_EQ(config.totalWords(), 2048);
    EXPECT_GT(config.bankWords, config.stackWords < config.bankWords
                                    ? config.stackWords
                                    : 0);
}

TEST(TargetVliw, DefaultConfigFitsSuite)
{
    // The default machine must hold the largest suite benchmark
    // (fft_1024: several multi-kiloword arrays) plus its stack.
    MachineConfig config;
    EXPECT_GE(config.bankWords - config.stackWords, 8192);
}

TEST(TargetVliw, SlotIndicesAreDense)
{
    std::set<int> slots = {SlotPCU, SlotMU0, SlotMU1,  SlotAU0, SlotAU1,
                           SlotDU0, SlotDU1, SlotFPU0, SlotFPU1};
    EXPECT_EQ(slots.size(), static_cast<std::size_t>(NumSlots));
    EXPECT_EQ(*slots.begin(), 0);
    EXPECT_EQ(*slots.rbegin(), NumSlots - 1);
}

TEST(TargetVliw, InstructionPrinterShowsSlots)
{
    VliwInst inst;
    Op add(Opcode::Add);
    add.dst = VReg(RegClass::Int, 3);
    add.srcs = {VReg(RegClass::Int, 1), VReg(RegClass::Int, 2)};
    inst.slots[SlotDU0] = add;
    std::string text = printVliwInst(inst);
    EXPECT_NE(text.find("DU0"), std::string::npos) << text;

    VliwInst empty;
    EXPECT_EQ(printVliwInst(empty), "(empty)");
}

TEST(TargetVliw, ProgramPrinterListsFunctions)
{
    VliwProgram prog;
    VliwInst inst;
    inst.slots[SlotPCU] = Op(Opcode::Halt);
    prog.insts.push_back(inst);
    prog.functionEntries.push_back({"main", 0});
    std::string text = printVliwProgram(prog);
    EXPECT_NE(text.find("main:"), std::string::npos) << text;
    EXPECT_EQ(prog.instructionWords(), 1);
}

} // namespace
} // namespace dsp
